"""Deterministic two-phase commit across shard groups.

The only cross-shard write in the TPC-W mix is a buy-confirm whose cart
holds items whose *stock* another shard owns.  The home shard's facade
runs a textbook 2PC, but every phase is **ordered through the
participating groups' own logs** (the actions below travel through
Treplica's totally ordered ``execute``), so the protocol inherits the
groups' crash tolerance: a participant replica that crashes mid-prepare
loses nothing that its group's log did not already order.

Protocol (coordinator = the home replica serving the interaction):

1. ``prepare`` to one replica of each foreign owner group, carrying the
   exact stock deltas.  The participant orders a :class:`TxPrepare`
   through its group (applying the deltas and recording them against the
   tx id) and replies with its vote.  No reply within
   ``txn_timeout_s`` -> retry against the group's next replica, up to
   ``txn_max_retries``; exhausted retries count as a *no* vote.
2. All yes -> the home shard orders its own commit record (the local
   :class:`~repro.tpcw.actions.BuyConfirm` with the foreign items
   excluded), then broadcasts ``commit`` to every replica of each
   participant group.  Any no -> broadcast ``abort``, which undoes the
   recorded deltas.  Decisions are idempotent (keyed by tx id), so the
   broadcast needs no ack tracking: any one live replica per group
   suffices to drive the group's log to the decision.

The coordinator emits ``txn`` trace events (``vote`` at participants,
``decision`` at the coordinator) that
:class:`repro.faults.checker.SafetyChecker` audits: one decision per
transaction, and no commit without a yes vote from every participant
shard.

**Termination protocol** (coordinator-crash tolerance).  A coordinator
that crashes between ``prepare`` and ``decide`` -- or whose decision
broadcast never reaches a participant group -- would otherwise leave the
prepared deltas pending forever.  Three pieces close that window:

* the home shard's :class:`~repro.tpcw.actions.BuyConfirm` commit record
  is stamped with the tx id and writes a durable outcome into
  ``state.txn_decisions`` when it orders;
* :class:`TxResolve`, ordered through the **home** group's log, returns
  the recorded outcome or -- when there is none -- records *presumed
  abort*.  Total order against the BuyConfirm makes the race safe: if
  the resolve orders first, the late commit record sees the abort and
  refuses to order;
* every participant replica runs an **orphan watcher**: a pending tx
  older than ``txn_orphan_timeout_s`` (volatile first-seen clock, reset
  per incarnation) is resolved by querying the home group (the shard is
  parsed from the tx id) and ordering the outcome through the
  participant's own log.  Resolution is idempotent, so concurrent
  resolvers -- or a resolver racing the coordinator's own late
  broadcast -- converge on the same outcome.

Resolvers emit the same ``decision`` trace events as the coordinator
(scoped to their own shard), so the safety checker cross-audits the
termination protocol against the coordinator's decision: any
disagreement is a ``txn-decision`` violation.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import registry_of
from repro.obs.trace import current_trace, spans_of
from repro.sim.node import Node
from repro.sim.trace import emit as trace_emit
from repro.treplica.actions import Action

TXN_PORT = "txn"
TXN_REPLY_PORT = "txn-reply"
TXN_RESOLVE_REPLY_PORT = "txn-resolve-reply"

#: Sentinel delivered when the prepare timeout fires first.
_TIMED_OUT = object()


def home_shard_of(tx_id: str) -> Optional[int]:
    """The coordinating (home) shard encoded in a tx id.

    Ids look like ``s0.replica2.3:tx7`` (coordinator node name dot
    incarnation); ``None`` when the name carries no shard prefix."""
    if not tx_id.startswith("s"):
        return None
    head = tx_id[1:].split(".", 1)[0]
    try:
        return int(head)
    except ValueError:
        return None


# ======================================================================
# replicated actions (ordered through the participant group's log)
# ======================================================================
class TxPrepare(Action):
    """Phase 1 on a participant: take the stock deltas provisionally.

    Stock never refuses a sale (the spec's restock-by-21 rule), so a
    prepare that reaches the log always votes yes; the recorded *net*
    deltas make an abort an exact undo.  Re-prepares (coordinator
    retries) are idempotent.
    """

    cpu_cost_s = 0.0002
    size_mb = 0.0004

    def __init__(self, tx_id: str, deltas: Tuple[Tuple[int, int], ...]):
        self.tx_id = tx_id
        self.deltas = tuple(deltas)

    def apply(self, app):
        state = app.state
        if self.tx_id in state.pending_txns:
            return True  # retried prepare: already holding the deltas
        if self.tx_id in state.finished_txns:
            return True  # decision already ordered; vote is moot
        applied = []
        for i_id, qty in self.deltas:
            item = state.items.get(i_id)
            if item is None:
                continue
            if item.i_stock - qty < 10:
                item.i_stock = item.i_stock - qty + 21  # spec restock rule
                applied.append((i_id, qty - 21))        # net delta taken
            else:
                item.i_stock -= qty
                applied.append((i_id, qty))
        state.pending_txns[self.tx_id] = tuple(applied)
        return True


class TxCommit(Action):
    """Phase 2 (commit): the provisional deltas become permanent."""

    cpu_cost_s = 0.0001
    size_mb = 0.0002

    def __init__(self, tx_id: str):
        self.tx_id = tx_id

    def apply(self, app):
        state = app.state
        state.pending_txns.pop(self.tx_id, None)
        state.finished_txns.add(self.tx_id)
        return True


class TxAbort(Action):
    """Phase 2 (abort): undo exactly the recorded net deltas."""

    cpu_cost_s = 0.0001
    size_mb = 0.0002

    def __init__(self, tx_id: str):
        self.tx_id = tx_id

    def apply(self, app):
        state = app.state
        applied = state.pending_txns.pop(self.tx_id, None)
        state.finished_txns.add(self.tx_id)
        if applied:
            for i_id, delta in applied:
                item = state.items.get(i_id)
                if item is not None:
                    item.i_stock += delta
        return True


class TxResolve(Action):
    """Termination protocol, home-group side: fix a tx's outcome.

    Ordered through the *home* group's log, so it is totally ordered
    against the tx's own :class:`~repro.tpcw.actions.BuyConfirm` commit
    record.  Returns the recorded outcome; when there is none yet the
    coordinator can no longer commit (the commit record checks the
    decision table before ordering), so *presumed abort* is recorded
    and returned.
    """

    cpu_cost_s = 0.0001
    size_mb = 0.0002

    def __init__(self, tx_id: str):
        self.tx_id = tx_id

    def apply(self, app):
        state = app.state
        if self.tx_id not in state.txn_decisions:
            state.txn_decisions[self.tx_id] = False  # presumed abort
        return "commit" if state.txn_decisions[self.tx_id] else "abort"


# ======================================================================
# per-replica protocol endpoints
# ======================================================================
class TxnParticipant:
    """Serves 2PC messages by ordering them through the local group.

    When given the full group map and an orphan timeout, it also runs
    the termination protocol's participant side: a watcher process (one
    per replica incarnation, volatile first-seen clocks) that resolves
    pending transactions whose decision never arrived by asking the
    home group and ordering the outcome through its own log.
    """

    def __init__(self, node: Node, runtime, shard: int,
                 group_names: Optional[List[List[str]]] = None,
                 resolve_timeout_s: float = 1.0,
                 resolve_retries: int = 2,
                 orphan_timeout_s: Optional[float] = None):
        self.node = node
        self.runtime = runtime
        self.shard = shard
        self._groups = group_names
        self._resolve_timeout_s = resolve_timeout_s
        self._resolve_retries = resolve_retries
        self._orphan_timeout_s = orphan_timeout_s
        self._resolve_waiters: Dict[str, object] = {}
        self._resolving: set = set()
        self._spans = spans_of(node.sim)
        self._recorder = getattr(node.sim, "recorder", None)
        obs = registry_of(node.sim)
        self._obs_resolved = obs.counter("shard.txn_resolved")

    def start(self) -> None:
        self.node.handle(TXN_PORT, self._on_message)
        if self._groups is not None and self._orphan_timeout_s is not None:
            self.node.handle(TXN_RESOLVE_REPLY_PORT, self._on_resolve_reply)
            self.node.spawn(self._watch(), name="txn-orphan-watcher")

    def _on_message(self, payload, src: str) -> None:
        self.node.spawn(self._serve(payload, src), name="txn-participant")

    def _serve(self, payload, src: str):
        kind, tx_id, deltas = payload
        if not self.runtime.ready:
            return  # recovering: silence makes the coordinator retry
        if kind == "prepare":
            span = None
            if self._spans is not None:
                # The tx id links this participant-side span to the
                # coordinator's txn.prepare span in the trace view.
                span = self._spans.begin("txn.participant", self.node.name,
                                         tx=tx_id, shard=self.shard)
            vote = yield from self.runtime.execute(TxPrepare(tx_id, deltas))
            if span is not None:
                self._spans.finish(span, vote=bool(vote))
            trace_emit(self.node.sim, "txn", self.node.name, event="vote",
                       tx=tx_id, shard=self.shard, vote=bool(vote))
            self.node.send(src, TXN_REPLY_PORT,
                           (tx_id, self.shard, bool(vote)), size_mb=0.0002)
        elif kind == "resolve":
            # Home-group side of the termination protocol: order the
            # resolve through *this* group's log and report the outcome.
            outcome = yield from self.runtime.execute(TxResolve(tx_id))
            self.node.send(src, TXN_RESOLVE_REPLY_PORT, (tx_id, outcome),
                           size_mb=0.0002)
        elif kind == "commit":
            yield from self.runtime.execute(TxCommit(tx_id))
        else:  # abort
            yield from self.runtime.execute(TxAbort(tx_id))

    # ------------------------------------------------------------------
    # orphan watcher (participant side of the termination protocol)
    # ------------------------------------------------------------------
    def _on_resolve_reply(self, payload, src: str) -> None:
        tx_id, outcome = payload
        waiter = self._resolve_waiters.pop(tx_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(outcome)

    def _watch(self):
        sim = self.node.sim
        first_seen: Dict[str, float] = {}
        poll = max(self._orphan_timeout_s / 4.0, 0.05)
        while True:
            yield sim.timeout(poll)
            if not self.runtime.ready:
                first_seen.clear()  # recovering: restart the clocks
                continue
            pending = self.runtime.app.state.pending_txns
            for tx_id in [t for t in first_seen if t not in pending]:
                del first_seen[tx_id]
            now = sim.now
            for tx_id in sorted(pending):
                first_seen.setdefault(tx_id, now)
            for tx_id in sorted(first_seen):
                if now - first_seen[tx_id] < self._orphan_timeout_s:
                    continue
                if tx_id in self._resolving:
                    continue
                home = home_shard_of(tx_id)
                if home is None or home == self.shard \
                        or not 0 <= home < len(self._groups):
                    continue  # malformed id: nothing to ask
                self._resolving.add(tx_id)
                self.node.spawn(self._resolve(tx_id, home),
                                name="txn-resolve")

    def _resolve(self, tx_id: str, home: int):
        sim = self.node.sim
        names = self._groups[home]
        outcome = None
        for attempt in range(self._resolve_retries + 1):
            target = names[attempt % len(names)]
            waiter = sim.event()
            self._resolve_waiters[tx_id] = waiter
            self.node.send(target, TXN_PORT, ("resolve", tx_id, None),
                           size_mb=0.0002)
            timer = sim.call_after(
                self._resolve_timeout_s,
                lambda ev=waiter: None if ev.triggered
                else ev.succeed(_TIMED_OUT))
            reply = yield waiter
            timer.cancel()
            self._resolve_waiters.pop(tx_id, None)
            if reply is not _TIMED_OUT:
                outcome = reply
                break
        if outcome is None or not self.runtime.ready:
            # Home group unreachable (or we started recovering): give up
            # for now; the watcher keeps the tx on its clock and retries.
            self._resolving.discard(tx_id)
            return
        trace_emit(self.node.sim, "txn", self.node.name, event="decision",
                   tx=tx_id, outcome=outcome, shards=(self.shard,),
                   via="resolve")
        if self._spans is not None:
            self._spans.instant("txn.resolve", self.node.name, tx=tx_id,
                                shard=self.shard, outcome=outcome)
        if self._recorder is not None:
            self._recorder.record("txn.resolve", self.node.name, tx=tx_id,
                                  shard=self.shard, outcome=outcome)
        self._obs_resolved.inc()
        if outcome == "commit":
            yield from self.runtime.execute(TxCommit(tx_id))
        else:
            yield from self.runtime.execute(TxAbort(tx_id))
        self._resolving.discard(tx_id)


class TxnCoordinator:
    """The home replica's 2PC driver (one per replica incarnation)."""

    def __init__(self, node: Node, shard: int,
                 group_names: List[List[str]],
                 timeout_s: float, max_retries: int):
        self.node = node
        self.shard = shard
        self._groups = group_names   # shard -> replica node names
        self._timeout_s = timeout_s
        self._max_retries = max_retries
        self._waiters: Dict[Tuple[str, int], object] = {}
        self._tx_seq = itertools.count(1)
        self._spans = spans_of(node.sim)
        self._recorder = getattr(node.sim, "recorder", None)
        obs = registry_of(node.sim)
        self._obs_started = obs.counter("shard.txn_started")
        self._obs_committed = obs.counter("shard.txn_committed")
        self._obs_aborted = obs.counter("shard.txn_aborted")
        self._obs_retries = obs.counter("shard.txn_retries")

    def start(self) -> None:
        self.node.handle(TXN_REPLY_PORT, self._on_reply)

    def new_tx_id(self) -> str:
        return (f"{self.node.name}.{self.node.incarnation}"
                f":tx{next(self._tx_seq)}")

    # ------------------------------------------------------------------
    def _on_reply(self, payload, src: str) -> None:
        tx_id, shard, vote = payload
        waiter = self._waiters.pop((tx_id, shard), None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(vote)

    def prepare(self, tx_id: str,
                parts: Dict[int, Tuple[Tuple[int, int], ...]]):
        """Generator: phase 1 against every participant shard, in shard
        order (deterministic).  Returns True iff all voted yes."""
        self._obs_started.inc()
        span = None
        if self._spans is not None:
            span = self._spans.begin("txn.prepare", self.node.name,
                                     trace=current_trace(self.node.sim),
                                     tx=tx_id, shards=tuple(sorted(parts)))
        all_yes = True
        for shard in sorted(parts):
            vote = yield from self._prepare_one(tx_id, shard, parts[shard])
            if not vote:
                all_yes = False
        if span is not None:
            self._spans.finish(span, ok=all_yes)
        return all_yes

    def _prepare_one(self, tx_id: str, shard: int,
                     deltas: Tuple[Tuple[int, int], ...]):
        sim = self.node.sim
        names = self._groups[shard]
        for attempt in range(self._max_retries + 1):
            if attempt:
                self._obs_retries.inc()
            target = names[attempt % len(names)]
            waiter = sim.event()
            self._waiters[(tx_id, shard)] = waiter
            self.node.send(target, TXN_PORT, ("prepare", tx_id, deltas),
                           size_mb=0.0004)
            timer = sim.call_after(
                self._timeout_s,
                lambda ev=waiter: None if ev.triggered
                else ev.succeed(_TIMED_OUT))
            vote = yield waiter
            timer.cancel()
            self._waiters.pop((tx_id, shard), None)
            if vote is not _TIMED_OUT:
                return bool(vote)
        return False  # participant group unreachable: counts as a no

    def decide(self, tx_id: str,
               parts: Dict[int, Tuple[Tuple[int, int], ...]],
               commit: bool) -> None:
        """Phase 2: broadcast the decision to every participant replica
        (idempotent at the log level, so no ack tracking is needed)."""
        outcome = "commit" if commit else "abort"
        (self._obs_committed if commit else self._obs_aborted).inc()
        trace_emit(self.node.sim, "txn", self.node.name, event="decision",
                   tx=tx_id, outcome=outcome, shards=tuple(sorted(parts)))
        if self._spans is not None:
            self._spans.instant("txn.decide", self.node.name,
                                trace=current_trace(self.node.sim),
                                tx=tx_id, outcome=outcome)
        if self._recorder is not None:
            self._recorder.record("txn.decide", self.node.name, tx=tx_id,
                                  outcome=outcome,
                                  shards=tuple(sorted(parts)))
        for shard in sorted(parts):
            for name in self._groups[shard]:
                self.node.send(name, TXN_PORT, (outcome, tx_id, None),
                               size_mb=0.0002)
