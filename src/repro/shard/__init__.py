"""Partitioned RobustStore: multi-group Paxos sharding.

The paper runs one consensus group for the whole bookstore, so total
order is the throughput ceiling no matter how many replicas are added.
This package adds the standard way past that cap (Spinnaker-style
key-range partitioning across independent Paxos cohorts):

* :class:`~repro.shard.partition.Partitioner` -- deterministic key-range
  partitioning of the TPC-W entity space (customers own carts/orders;
  items are partitioned for stock ownership);
* :class:`~repro.shard.cluster.ShardedCluster` -- one independent
  Paxos+Treplica :class:`~repro.harness.cluster.ReplicaGroup` per shard
  behind a single shard-aware router;
* :class:`~repro.shard.router.ShardRouter` -- maps every interaction to
  its home shard via the session's customer id;
* :mod:`~repro.shard.txn` -- a deterministic two-phase commit
  coordinator, ordered through the participating groups' own logs, for
  the few cross-shard writes (buy-confirms touching foreign stock).

Entry point: ``Experiment(...).shards(k)`` or ``repro run --shards k``.
"""

from repro.shard.partition import Partitioner
from repro.shard.router import ShardRouter

__all__ = ["Partitioner", "ShardRouter", "ShardedCluster"]


def __getattr__(name):
    # ShardedCluster pulls in the full harness; import it lazily so
    # `from repro.shard import Partitioner` stays light.
    if name == "ShardedCluster":
        from repro.shard.cluster import ShardedCluster
        return ShardedCluster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
