"""The shard-aware router: one proxy fronting all shard groups.

A :class:`~repro.web.proxy.ReverseProxy` subclass, so the probing,
fall/rise bookkeeping, redispatch, and broken-connection semantics of
the paper's HAProxy model apply unchanged -- the only override is the
backend choice: every request is mapped to its **home shard** (the
session customer's owner group, falling back to a stable hash of the
client id before a session binds to a customer) and balanced over the
live replicas of that group only.

Per-shard instruments (``shard.s<g>.*``) feed the per-shard WIPS and
router-distribution series that ``repro report --aggregate`` folds into
cluster-level numbers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.registry import registry_of
from repro.shard.partition import Partitioner
from repro.sim.node import Node
from repro.web.http import Request, Response
from repro.web.proxy import ProxyParams, ReverseProxy


class ShardRouter(ReverseProxy):
    """Routes each interaction to its home shard's replica group."""

    def __init__(self, node: Node, shard_backends: List[List[str]],
                 partitioner: Partitioner,
                 params: Optional[ProxyParams] = None):
        flat = [name for group in shard_backends for name in group]
        super().__init__(node, flat, params)
        self.partitioner = partitioner
        self._shard_sets = [frozenset(group) for group in shard_backends]
        obs = registry_of(node.sim)
        self._obs_hits = [obs.counter(f"shard.s{g}.router_hits")
                          for g in range(len(shard_backends))]
        self._obs_ok = [obs.counter(f"shard.s{g}.interactions_ok")
                        for g in range(len(shard_backends))]
        self._obs_wirt = [obs.counter(f"shard.s{g}.wirt_sum_s")
                          for g in range(len(shard_backends))]

    # ------------------------------------------------------------------
    def home_shard(self, request: Request) -> int:
        """The shard that owns this request's session."""
        c_id = request.session.get("c_id")
        if c_id is not None:
            return self.partitioner.shard_of_customer(c_id)
        # No customer bound yet: stable per-client hash, so the whole
        # anonymous prefix of a session stays on one group.
        return request.client_id % len(self._shard_sets)

    def _pick_backend(self, request: Request, attempt: int) -> Optional[str]:
        shard = self.home_shard(request)
        if attempt == 0:
            self._obs_hits[shard].inc()
        members = self._shard_sets[shard]
        pool = [b for b in self.active if b in members]
        if not pool:
            return None
        return pool[(request.client_id + attempt) % len(pool)]

    def _reply(self, request: Request, response: Response) -> None:
        if response.ok:
            shard = self.home_shard(request)
            self._obs_ok[shard].inc()
            self._obs_wirt[shard].inc(self.node.sim.now - request.sent_at)
        super()._reply(request, response)
