"""Deterministic key-range partitioning of the TPC-W entity space.

Every shard's replicas start from the *same* cloned population (the full
catalog is needed everywhere for reads), but each entity has exactly one
**owner** shard whose consensus group orders its updates:

* **customers** are range-partitioned over the initial population
  ``1..num_customers`` in contiguous blocks; customers created at run
  time are allocated out of disjoint per-shard id blocks starting at
  ``DYNAMIC_BLOCK * (shard + 1)``, so the independent groups can keep
  allocating without coordination and the owner is decodable from the
  id alone;
* **carts and orders** live wholly on the owning customer's shard (they
  are only ever reached through the customer's session, which the
  router pins to that shard);
* **items** are range-partitioned for *stock ownership*: the owner
  shard's log orders all stock movement of its range.  A buy-confirm
  whose cart spans foreign ranges pays a two-phase commit
  (:mod:`repro.shard.txn`) against the owners.

All maps are pure functions of ``(shards, population size)``, so every
replica, the router, and the coordinator agree without any lookup state.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Base of the per-shard dynamic customer-id blocks.  The initial
#: population is far below this, and no simulated run allocates anywhere
#: near ``DYNAMIC_BLOCK`` new customers per shard, so ownership is
#: decodable from ``c_id // DYNAMIC_BLOCK`` alone.
DYNAMIC_BLOCK = 10 ** 9


@dataclass(frozen=True)
class Partitioner:
    """Key-range maps over ``shards`` groups for one population."""

    shards: int
    num_customers: int
    num_items: int

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.num_customers < 1 or self.num_items < 1:
            raise ValueError("population must have customers and items")

    @classmethod
    def for_population(cls, shards: int, params) -> "Partitioner":
        """Build from a :class:`~repro.tpcw.population.PopulationParams`."""
        return cls(shards, params.num_customers, params.real_items)

    # ------------------------------------------------------------------
    # customers (and through them: sessions, carts, orders)
    # ------------------------------------------------------------------
    def shard_of_customer(self, c_id: int) -> int:
        """The home shard of a customer id (initial or dynamic)."""
        if c_id >= DYNAMIC_BLOCK:
            return min(c_id // DYNAMIC_BLOCK - 1, self.shards - 1)
        position = min(max(c_id, 1), self.num_customers) - 1
        return position * self.shards // self.num_customers

    def customer_id_floor(self, shard: int) -> int:
        """Start of the shard's dynamic customer-id block."""
        return DYNAMIC_BLOCK * (shard + 1)

    def customer_range(self, shard: int) -> range:
        """The initial customers the shard owns (contiguous block).

        The exact inverse image of :meth:`shard_of_customer`'s
        ``position * shards // n`` map, hence the ceil divisions."""
        lo = -(-shard * self.num_customers // self.shards)
        hi = -(-(shard + 1) * self.num_customers // self.shards)
        return range(lo + 1, hi + 1)

    # ------------------------------------------------------------------
    # items (stock ownership)
    # ------------------------------------------------------------------
    def shard_of_item(self, i_id: int) -> int:
        """The shard whose log orders this item's stock movement."""
        position = min(max(i_id, 1), self.num_items) - 1
        return position * self.shards // self.num_items

    def item_range(self, shard: int) -> range:
        lo = -(-shard * self.num_items // self.shards)
        hi = -(-(shard + 1) * self.num_items // self.shards)
        return range(lo + 1, hi + 1)
