"""The partitioned RobustStore deployment: k independent groups, one
router, shared clients.

Layout (generalizing Figure 2 of the paper):

* ``s<g>.replica0..n`` -- shard ``g``'s replica tier: a full
  Paxos+Treplica :class:`~repro.harness.cluster.ReplicaGroup`, booted
  from the same cloned population as every other group but *owning* only
  its key ranges (:class:`~repro.shard.partition.Partitioner`);
* ``proxy`` -- one :class:`~repro.shard.router.ShardRouter` mapping each
  interaction to its home shard and balancing inside that group only;
* ``client0..m`` -- the unchanged RBE fleet.

Recovery stays **per group**: each shard has its own watchdogs,
checkpoints, and recovery-event log entries (tagged with the shard id),
and a crash in one group never stalls the others' pipelines -- that
independence is exactly the scaling argument the shard benchmarks
measure.

Fault targets are shard-qualified: every fault-injection method accepts
either a plain replica index (shard 0, matching the unsharded cluster's
interface) or a ``(shard, replica)`` pair, which is what the faultload
grammar's ``crash@240:1.2`` produces.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import replace
from typing import List, Optional, Tuple, Union

from repro.faults.checker import SafetyChecker
from repro.faults.faultload import (
    NEMESIS_KINDS,
    ONEWAY_KIND,
    STORAGE_KINDS,
    FaultEvent,
    Faultload,
)
from repro.faults.metrics import MetricsCollector, NemesisStats
from repro.geo import DegradeWindow, GeoState
from repro.harness.cluster import ReplicaGroup
from repro.harness.config import ClusterConfig
from repro.load import build_load
from repro.obs import (FlightRecorder, KernelProfiler, MetricsRegistry,
                       SloEngine, SpanTracer, TimelineSampler)
from repro.shard.database import ShardedTPCWDatabase
from repro.shard.partition import Partitioner
from repro.shard.router import ShardRouter
from repro.shard.txn import TxnCoordinator, TxnParticipant
from repro.sim import (
    Nemesis,
    NemesisParams,
    NemesisWindow,
    Network,
    NetworkParams,
    Node,
    SeedTree,
    Simulator,
    StorageFault,
    StorageNemesis,
)
from repro.sim.trace import Tracer
from repro.tpcw.population import PopulationParams, populate
from repro.tpcw.rbe import RemoteBrowserEmulator
from repro.tpcw.workload import profile_by_name

#: A fault target: plain replica index (meaning shard 0) or
#: ``(shard, replica)``.
Target = Union[int, Tuple[int, int]]


class ShardedCluster:
    """One partitioned deployment, ready for an experiment run."""

    def __init__(self, config: ClusterConfig):
        if config.shards < 1:
            raise ValueError(f"shards must be >= 1, got {config.shards}")
        self.config = config
        self.sim = Simulator()
        self.seed = SeedTree(config.seed)
        if config.safety_tracing:
            self.sim.tracer = Tracer(
                self.sim, categories=list(SafetyChecker.CATEGORIES)
                + ["nemesis", "node"])
        self.metrics: Optional[MetricsRegistry] = None
        self.profiler: Optional[KernelProfiler] = None
        self.sampler: Optional[TimelineSampler] = None
        if config.observability:
            self.metrics = MetricsRegistry()
            self.sim.metrics = self.metrics
            self.profiler = KernelProfiler()
            self.sim.profiler = self.profiler
            self.sampler = TimelineSampler(
                self.sim, self.metrics,
                config.scale.t(config.obs_tick_s))
        self.span_tracer: Optional[SpanTracer] = None
        if config.span_tracing:
            self.span_tracer = SpanTracer(self.sim)
            self.sim.spans = self.span_tracer
        # Flight recorder: attached before components, like sim.spans
        # (sites capture recorder_of(sim) at construction time).
        self.recorder: Optional[FlightRecorder] = None
        if config.recording_enabled:
            self.recorder = FlightRecorder(
                self.sim, capacity=config.recorder_capacity)
            self.sim.recorder = self.recorder
        self.network = Network(self.sim, NetworkParams(), seed=self.seed,
                               nemesis=Nemesis(self.sim, seed=self.seed))
        # Created lazily by the first storage fault (apply_storage_fault);
        # shared by every group so the audit counters are deployment-wide.
        # Storage-fault-free runs never construct it: bit-for-bit parity.
        self.storage_nemesis: Optional[StorageNemesis] = None
        self.profile = profile_by_name(config.profile)
        self.collector = MetricsCollector()

        scale = config.scale
        self.population_params = PopulationParams(
            num_items=config.num_items, num_ebs=config.num_ebs,
            entity_scale=scale.entity_scale, seed=config.seed)
        self._population_blob = pickle.dumps(populate(self.population_params))
        self._size_multiplier = (self.population_params.size_multiplier
                                 / scale.time_div)
        self.partitioner = Partitioner.for_population(config.shards,
                                                      self.population_params)

        # --- nodes: every group's replicas, then proxy, then clients ----
        self.recoveries: List[dict] = []   # shared log, entries shard-tagged
        self.groups: List[ReplicaGroup] = [
            ReplicaGroup(self.sim, self.network, config,
                         self.seed.fork(f"shard{g}"),
                         self._population_blob, self._size_multiplier,
                         name_prefix=f"s{g}.", shard=g,
                         database_factory=self._make_database,
                         recoveries=self.recoveries)
            for g in range(config.shards)]
        self._group_names: List[List[str]] = [group.replica_names
                                              for group in self.groups]
        self.replica_nodes: List[Node] = [node for group in self.groups
                                          for node in group.replica_nodes]
        self.proxy_node = Node(self.sim, self.network, "proxy",
                               cpu_speed=1.0 / scale.load_div)
        self.client_nodes: List[Node] = [
            Node(self.sim, self.network, f"client{i}")
            for i in range(config.client_nodes)]

        # --- replica software (all groups exist: coordinators can see
        # every group's member list) -----------------------------------
        for group in self.groups:
            group.boot_all()

        # --- router ----------------------------------------------------
        self.proxy = ShardRouter(self.proxy_node, self._group_names,
                                 self.partitioner, config.proxy_params())
        self.proxy.start()

        # --- geo-replication (repro.geo) --------------------------------
        # Same placement for every group: shard g's replica i sits in the
        # same DC as shard h's replica i, so one DC outage hits the same
        # quorum slot everywhere.
        self.geo_state: Optional[GeoState] = None
        if config.geo is not None:
            self.geo_state = GeoState(
                config.geo,
                [[((g, i), name) for i, name in enumerate(names)]
                 for g, names in enumerate(self._group_names)],
                [self.proxy_node.name]
                + [node.name for node in self.client_nodes])
            self.network.set_geo(self.geo_state.model)
            self.proxy.set_backend_dcs(self.geo_state.replica_dc_of)
            if self.recorder is not None:
                self.recorder.record("geo.placement", None,
                                     **self.geo_state.replica_dc_of)

        # --- watchdogs (per group) -------------------------------------
        for group in self.groups:
            group.start_watchdogs()

        # --- load tier (closed-loop RBE fleet or open-loop arrivals) ----
        self.rbes: List[RemoteBrowserEmulator]
        self.load_sources: List
        self.rbes, self.load_sources = build_load(
            self.client_nodes, self.proxy_node.name, self.profile,
            self.collector, self.seed, config)

        # --- deployment-wide nemesis schedule --------------------------
        if config.nemesis_spec:
            self._arm_config_nemesis(config.nemesis_spec)

        # --- observability ---------------------------------------------
        if self.metrics is not None:
            self._register_gauges()
            self.sampler.start()

        # --- SLO engine (repro.obs.slo), judging the merged collector --
        self.slo_engine: Optional[SloEngine] = None
        if config.slo_spec is not None:
            self.slo_engine = SloEngine(
                self.sim, self.collector, config.slo_spec,
                scale=config.scale, recorder=self.recorder,
                warmup_until=config.scale.measure_start)
            self.slo_engine.start()

    # ------------------------------------------------------------------
    # per-replica software (ReplicaGroup database_factory hook)
    # ------------------------------------------------------------------
    def _make_database(self, group: ReplicaGroup, index: int, node,
                       runtime) -> ShardedTPCWDatabase:
        """Build the shard-aware facade plus its 2PC endpoints for one
        replica (and re-build them on every reboot/incarnation)."""
        coordinator = TxnCoordinator(
            node, group.shard, self._group_names,
            timeout_s=self.config.txn_timeout_s,
            max_retries=self.config.txn_max_retries)
        coordinator.start()
        TxnParticipant(
            node, runtime, group.shard,
            group_names=self._group_names,
            resolve_timeout_s=self.config.txn_timeout_s,
            resolve_retries=self.config.txn_max_retries,
            orphan_timeout_s=self.config.txn_orphan_timeout_s).start()
        return ShardedTPCWDatabase(
            runtime, clock=lambda: self.sim.now,
            rng=group.seed.fork_random(f"db-{index}-{node.incarnation}"),
            partitioner=self.partitioner, shard=group.shard,
            coordinator=coordinator)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _register_gauges(self) -> None:
        obs = self.metrics
        network = self.network
        obs.gauge("sim.net_inflight_messages",
                  lambda: network.inflight_messages)
        obs.gauge("sim.net_inflight_mb", lambda: network.inflight_mb)
        nemesis = network.nemesis
        if nemesis is not None:
            obs.gauge("sim.nemesis_dropped", lambda: nemesis.dropped)
            obs.gauge("sim.nemesis_duplicated", lambda: nemesis.duplicated)
            obs.gauge("sim.nemesis_delayed", lambda: nemesis.delayed)
        obs.gauge("sim.disk_queue_depth",
                  lambda: sum(node.disk.queue_length
                              for node in self.replica_nodes))
        obs.gauge("paxos.live_replicas",
                  lambda: float(len(self.live_replicas())))
        obs.gauge("treplica.queue_depth", self._max_apply_backlog)
        for g, group in enumerate(self.groups):
            obs.gauge(f"shard.s{g}.live_replicas",
                      lambda grp=group: float(len(grp.live_replicas())))
            obs.gauge(f"shard.s{g}.queue_depth",
                      lambda grp=group: grp.max_apply_backlog())
        if self.geo_state is not None:
            model = self.geo_state.model
            obs.gauge("sim.net_wan_messages",
                      lambda: float(model.wan_messages))
            obs.gauge("sim.net_wan_mb", lambda: model.wan_mb)
            for dc in self.geo_state.geo.topology.dcs:
                targets = tuple(self.geo_state.replica_targets(dc))
                obs.gauge(f"geo.{dc}.live_replicas",
                          lambda tgts=targets: float(sum(
                              1 for (g, i) in tgts
                              if self.groups[g].replica_nodes[i].alive)))

    def _max_apply_backlog(self) -> float:
        return max(group.max_apply_backlog() for group in self.groups)

    @property
    def timeline(self):
        return self.sampler.timeline if self.sampler is not None else None

    # ------------------------------------------------------------------
    # fault-injection interface (shard-qualified targets)
    # ------------------------------------------------------------------
    def _resolve(self, target: Target) -> Tuple[int, int]:
        if isinstance(target, tuple):
            shard, index = target
        else:
            shard, index = 0, target
        if not 0 <= shard < len(self.groups):
            raise ValueError(f"no such shard: {shard}")
        if not 0 <= index < len(self._group_names[shard]):
            raise ValueError(
                f"shard {shard} has replicas 0.."
                f"{len(self._group_names[shard]) - 1}, no replica {index}")
        return shard, index

    def _replica_name(self, target: Target) -> str:
        shard, index = self._resolve(target)
        return self._group_names[shard][index]

    def live_replicas(self) -> List[Tuple[int, int]]:
        return [(g, i) for g, group in enumerate(self.groups)
                for i in group.live_replicas()]

    def crash_replica(self, target: Target) -> None:
        shard, index = self._resolve(target)
        self.groups[shard].crash_replica(index)

    def reboot_replica(self, target: Target) -> None:
        shard, index = self._resolve(target)
        self.groups[shard].reboot_replica(index)

    def partition_replica(self, target: Target) -> None:
        shard, index = self._resolve(target)
        self.groups[shard].partition_replica(index)

    def heal_replica(self, target: Target) -> None:
        shard, index = self._resolve(target)
        self.groups[shard].heal_replica(index)

    def disable_watchdog(self, target: Target) -> None:
        shard, index = self._resolve(target)
        self.groups[shard].disable_watchdog(index)

    def begin_slowdown(self, factor: float) -> None:
        """Retrystorm trigger: every replica of every shard slows down."""
        for group in self.groups:
            group.begin_slowdown(factor)

    def end_slowdown(self) -> None:
        for group in self.groups:
            group.end_slowdown()

    def block_oneway(self, src: Target, dst: Target) -> None:
        self.network.block_oneway(self._replica_name(src),
                                  self._replica_name(dst))

    def unblock_oneway(self, src: Target, dst: Target) -> None:
        self.network.unblock_oneway(self._replica_name(src),
                                    self._replica_name(dst))

    def apply_nemesis(self, event: FaultEvent) -> None:
        if event.kind == "drop":
            params = NemesisParams(drop_p=event.p)
        elif event.kind == "dup":
            params = NemesisParams(duplicate_p=event.p)
        elif event.kind == "delay":
            kwargs = {"delay_p": event.p}
            if event.delay_mean_s is not None:
                kwargs["delay_mean_s"] = event.delay_mean_s
            params = NemesisParams(**kwargs)
        else:
            raise ValueError(f"not a nemesis window kind: {event.kind!r}")
        pairs = None
        if event.replica is not None:
            pairs = frozenset({(self._replica_name(event.src_target),
                                self._replica_name(event.dst_target))})
        end = event.until if event.until is not None else math.inf
        self.network.nemesis.add_window(
            NemesisWindow(event.at, end, params, pairs))

    def _arm_config_nemesis(self, spec: str) -> None:
        scale = self.config.scale
        for event in Faultload.parse(spec, name="config-nemesis").events:
            scaled = replace(
                event, at=scale.t(event.at),
                until=None if event.until is None else scale.t(event.until))
            if scaled.kind in NEMESIS_KINDS:
                self.apply_nemesis(scaled)
            elif scaled.kind == ONEWAY_KIND:
                self.sim.call_at(scaled.at, self.block_oneway,
                                 scaled.src_target, scaled.dst_target)
                if scaled.until is not None and not math.isinf(scaled.until):
                    self.sim.call_at(scaled.until, self.unblock_oneway,
                                     scaled.src_target, scaled.dst_target)
            elif scaled.kind in STORAGE_KINDS:
                self.apply_storage_fault(scaled)
            else:
                raise ValueError(
                    f"nemesis_spec only takes message and storage faults "
                    f"({', '.join(NEMESIS_KINDS)}, {ONEWAY_KIND}, "
                    f"{', '.join(STORAGE_KINDS)}), got {scaled.kind!r}")

    def _ensure_storage_nemesis(self) -> StorageNemesis:
        if self.storage_nemesis is None:
            self.storage_nemesis = StorageNemesis(self.sim, seed=self.seed)
            for group in self.groups:
                group.attach_storage_nemesis(self.storage_nemesis)
            # The engine's accept audit trail (and nothing else) keys off
            # this attribute; see PaxosEngine._vote.
            self.sim.storage_faults = self.storage_nemesis
        return self.storage_nemesis

    def apply_storage_fault(self, event: FaultEvent) -> None:
        """Install one storage-fault event (times already on the
        compressed timeline) on the shared storage nemesis."""
        nemesis = self._ensure_storage_nemesis()
        shard, index = self._resolve(event.src_target)
        disk_name = self.groups[shard].replica_nodes[index].disk.name
        if event.kind == "corrupt":
            nemesis.schedule_corruption(event.at, disk_name)
            return
        nemesis.add_window(StorageFault(
            kind=event.kind, disk=disk_name, start=event.at,
            end=event.until if event.until is not None else math.inf,
            p=event.p if event.p is not None else 1.0,
            slow_factor=event.factor if event.factor is not None else 4.0))

    # ------------------------------------------------------------------
    # DC-scoped faults (geo runs only)
    # ------------------------------------------------------------------
    def _geo(self) -> GeoState:
        if self.geo_state is None:
            raise RuntimeError(
                "DC-scoped faults need a geo topology; configure one via "
                "Experiment.geo(...) or the CLI --geo option")
        return self.geo_state

    def fail_dc(self, dc: str) -> int:
        """Full DC outage across every shard: crash each replica housed
        in ``dc`` with its watchdog disabled.  Returns the count taken
        down."""
        crashed = 0
        for target in self._geo().replica_targets(dc):
            self.disable_watchdog(target)
            shard, index = self._resolve(target)
            if self.groups[shard].replica_nodes[index].alive:
                self.crash_replica(target)
                crashed += 1
        return crashed

    def restore_dc(self, dc: str) -> None:
        """Power restored: re-enable the DC's watchdogs (autonomous
        revival, no intervention counted)."""
        for target in self._geo().replica_targets(dc):
            shard, index = self._resolve(target)
            self.groups[shard].watchdogs[index].enabled = \
                self.config.watchdog_enabled

    def wan_partition(self, dc: str, peer_dcs) -> None:
        for a, b in self._geo().cut_pairs(dc, peer_dcs):
            self.network.block(a, b)

    def heal_wan_partition(self, dc: str, peer_dcs) -> None:
        for a, b in self._geo().cut_pairs(dc, peer_dcs):
            self.network.unblock(a, b)

    def wan_degrade(self, event: FaultEvent) -> None:
        """Arm one windowed asymmetric WAN slowdown (times already on
        the compressed timeline)."""
        state = self._geo()
        state.require_dc(event.dc)
        state.require_dc(event.to_dc)
        state.model.add_degrade(DegradeWindow(
            start=event.at,
            end=event.until if event.until is not None else math.inf,
            src_dc=event.dc, dst_dc=event.to_dc,
            factor=event.factor if event.factor is not None else 4.0))

    # ------------------------------------------------------------------
    # run auditing
    # ------------------------------------------------------------------
    def nemesis_stats(self) -> NemesisStats:
        return NemesisStats.from_network(self.network)

    def storage_stats(self) -> Optional[dict]:
        """Injection counters (None when no storage fault was configured)."""
        if self.storage_nemesis is None:
            return None
        return dict(self.storage_nemesis.counters)

    def breaker_trips(self) -> int:
        """Watchdogs (across every group) that gave up on a crash-looping
        replica; each trip counts against autonomy like a manual reboot."""
        return sum(1 for group in self.groups
                   for watchdog in group.watchdogs if watchdog.tripped)

    def safety_checker(self) -> SafetyChecker:
        tracer = getattr(self.sim, "tracer", None)
        if tracer is None:
            raise RuntimeError(
                "safety auditing needs ClusterConfig(safety_tracing=True)")
        return SafetyChecker(tracer)

    # ------------------------------------------------------------------
    def run(self, seconds: float) -> None:
        self.sim.run(until=self.sim.now + seconds)
        self._finish_observation()

    def run_until(self, when: float) -> None:
        self.sim.run(until=when)
        self._finish_observation()

    def _finish_observation(self) -> None:
        """Flush the trailing partial sampler tick and give the SLO
        engine a final look at the stop instant (both no-ops when a
        tick landed exactly here)."""
        if self.sampler is not None:
            self.sampler.flush()
        if self.slo_engine is not None:
            self.slo_engine.finalize(self.sim.now)
