"""repro -- reproduction of "Dynamic Content Web Applications: Crash,
Failover, and Recovery Analysis" (Buzato, Vieira, Zwaenepoel -- DSN 2009).

The package layers, bottom to top:

* :mod:`repro.sim` -- deterministic discrete-event cluster simulator
  (nodes, CPUs, disks, network) standing in for the paper's 18-node testbed.
* :mod:`repro.paxos` -- Classic Paxos, Multi-Paxos and Fast Paxos with the
  Treplica mode rule (fast while ceil(3N/4) alive, classic while a majority
  is alive, blocked below).
* :mod:`repro.treplica` -- the replication middleware: asynchronous
  persistent queue, replicated state machine, checkpointing, and autonomous
  recovery.
* :mod:`repro.tpcw` -- the TPC-W online bookstore: data model, database
  facade, population generator, workload profiles, and remote browser
  emulators.
* :mod:`repro.web` -- application servers and the probing/hashing reverse
  proxy that provides failover.
* :mod:`repro.faults` -- faultloads, watchdogs, and the dependability
  metrics (availability, performability, accuracy, autonomy).
* :mod:`repro.harness` -- experiment drivers that regenerate every table
  and figure of the paper's evaluation.
* :mod:`repro.apps` -- further applications on the middleware (a
  Chubby-style lock service), demonstrating the Section-4 retrofit recipe
  beyond the bookstore.
"""

__version__ = "1.0.0"

#: The supported top-level surface.  Everything else is reachable through
#: the subpackages but may move between minor versions.
__all__ = [
    "ClusterConfig",
    "Experiment",
    "ExperimentResult",
    "ExperimentScale",
    "MetricsRegistry",
    "MissingWindowError",
    "Timeline",
    "__version__",
]

_LAZY = {
    "ClusterConfig": "repro.harness.config",
    "Experiment": "repro.harness.experiment",
    "ExperimentResult": "repro.harness.experiments",
    "ExperimentScale": "repro.harness.config",
    "MetricsRegistry": "repro.obs.registry",
    "MissingWindowError": "repro.harness.experiments",
    "Timeline": "repro.obs.timeline",
}


def __getattr__(name):
    # PEP 562 lazy re-exports: `import repro` stays import-cycle-free and
    # cheap, while `repro.Experiment` et al. resolve on first touch.
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
