"""Treplica -- the replication middleware (Section 2 of the paper).

Treplica turns a deterministic, single-process application into a
replicated, crash-recoverable one.  Its two programming abstractions are:

* the **asynchronous persistent queue** (:class:`PersistentQueue`):
  a totally ordered, durable collection of actions with an asynchronous
  ``enqueue`` and a blocking ``dequeue``; implemented on Paxos / Fast
  Paxos, so it keeps working through partial failures without
  reconfiguration;
* the **replicated state machine** (:class:`StateMachine`): the
  application is a black box whose public methods become deterministic
  actions; ``execute(action)`` blocks until the action has been applied
  locally, and ``get_state()`` returns the most recent consistent state.

Recovery is transparent: a rebooted replica loads its latest local
checkpoint, learns the missed queue suffix from its peers in parallel,
re-applies it, and rejoins -- the programmer only calls ``get_state()``.
"""

from repro.treplica.actions import Action, Barrier
from repro.treplica.application import Application, InMemoryApplication
from repro.treplica.checkpoint import CheckpointManager, CheckpointRecord
from repro.treplica.config import TreplicaConfig
from repro.treplica.queue import PersistentQueue
from repro.treplica.runtime import StateMachine, TreplicaRuntime

__all__ = [
    "Action",
    "Application",
    "Barrier",
    "CheckpointManager",
    "CheckpointRecord",
    "InMemoryApplication",
    "PersistentQueue",
    "StateMachine",
    "TreplicaConfig",
    "TreplicaRuntime",
]
