"""The asynchronous persistent queue -- Treplica's main abstraction.

A totally ordered, durable collection of objects: ``enqueue`` is
asynchronous (the object will appear in the order exactly once on every
replica), ``dequeue`` blocks until the next object in the total order is
available locally.  Persistence means a replica can crash, recover, and
bind again to its queue, certain that no enqueue from any replica was
missed -- the queue's durability is the Paxos acceptors' durability.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.paxos.config import PaxosConfig
from repro.paxos.engine import PaxosEngine
from repro.paxos.messages import Command
from repro.sim.core import Event
from repro.sim.disk import WriteAheadLog
from repro.sim.node import Node
from repro.sim.rng import SeedTree


class PersistentQueue:
    """One replica's binding to the replicated queue.

    Items come out as ``(instance, uid, payload)`` triples in the cluster-
    wide total order, deduplicated (retransmissions collapse).  Crashed
    replicas rebind by constructing a new queue on the same node: durable
    Paxos state is restored from the node's disk and the missed suffix is
    learned from the peers.
    """

    def __init__(self, node: Node, replica_names, my_id: int,
                 config: Optional[PaxosConfig] = None,
                 seed: Optional[SeedTree] = None,
                 start_instance: int = 0,
                 wal: Optional[WriteAheadLog] = None,
                 delivered_uids=()):
        self.node = node
        self._sim = node.sim
        config = config or PaxosConfig()
        seed = seed or SeedTree(0)
        if wal is None:
            wal = WriteAheadLog(self._sim, node.disk,
                                name=f"{node.name}-queue-wal", node=node)
        self.engine = PaxosEngine(node, replica_names, my_id, config, seed,
                                  wal=wal, start_instance=start_instance,
                                  delivered_uids=delivered_uids)
        self._stream = self._sim.channel()  # (instance, ((uid, payload), ...))
        self._items = []  # item-level buffer for dequeue()
        self._uid_counter = 0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind to the queue: restore durable state and begin learning."""
        if self._started:
            raise RuntimeError("queue already bound")
        self._started = True
        self.engine.start()
        self.node.spawn(self._pump(), name="queue-pump")

    def _pump(self):
        while True:
            instance, fresh = yield self.engine.delivery.get()
            items = tuple((command.uid, command.payload) for command in fresh)
            self._stream.put((instance, items))

    # ------------------------------------------------------------------
    def enqueue(self, payload: Any, size_mb: float = 0.0004,
                uid: Optional[str] = None) -> str:
        """Asynchronously add ``payload`` to the total order; returns its uid."""
        if uid is None:
            self._uid_counter += 1
            uid = (f"{self.node.name}.{self.node.incarnation}"
                   f":{self._uid_counter}")
        self.engine.submit(Command(uid, payload, size_mb=size_mb))
        return uid

    def dequeue_batch(self) -> Event:
        """Awaitable for the next ``(instance, items)`` group in order,
        where ``items`` is a tuple of ``(uid, payload)`` pairs (empty for
        a no-op gap filler).  Consensus batches several enqueues into one
        instance; batch granularity lets consumers apply an instance
        atomically (checkpoints then always sit at instance boundaries).
        """
        return self._stream.get()

    def dequeue(self) -> Event:
        """Awaitable for the next single ``(instance, uid, payload)`` item
        in the total order (the paper's ``Object dequeue()``).

        Intended for a single consumer per replica; batches are unpacked
        internally.  No-op entries are skipped.
        """
        done = self._sim.event()
        self._fill_item(done)
        return done

    def _fill_item(self, done: Event) -> None:
        if self._items:
            done.succeed(self._items.pop(0))
            return

        def on_batch(event: Event) -> None:
            instance, items = event.value
            for uid, payload in items:
                self._items.append((instance, uid, payload))
            self._fill_item(done)  # empty batches: wait for the next one

        self._stream.get().add_callback(on_batch)

    # ------------------------------------------------------------------
    @property
    def decided_watermark(self) -> int:
        return self.engine.watermark

    @property
    def mode(self) -> str:
        return self.engine.mode

    def truncate_below(self, instance: int) -> None:
        self.engine.truncate_below(instance)
