"""The application contract Treplica replicates.

An application is a black box (the paper's state-machine view): Treplica
never inspects its state, it only needs to snapshot it, restore it, and
know its nominal size so the simulator can charge realistic checkpoint
and recovery costs.
"""

from __future__ import annotations

import pickle
from typing import Any


class Application:
    """Protocol for replicated applications.

    * :meth:`snapshot` returns an opaque, self-contained copy of the full
      state (taken atomically between events);
    * :meth:`restore` replaces the state with a snapshot;
    * :meth:`state_size_mb` reports the *nominal* state size, which drives
      simulated checkpoint-write, checkpoint-load, and state-transfer
      timing (the paper's 300/500/700 MB experiment parameter).
    """

    def snapshot(self) -> Any:
        raise NotImplementedError

    def restore(self, snapshot: Any) -> None:
        raise NotImplementedError

    def state_size_mb(self) -> float:
        raise NotImplementedError


class InMemoryApplication(Application):
    """Convenience base: pickle-based snapshots of ``self.state``.

    Subclasses keep all replicated data under ``self.state`` (any
    picklable object) and may override :meth:`state_size_mb` when the
    nominal size differs from the in-simulator footprint.
    """

    def __init__(self, state: Any = None, nominal_size_mb: float = 1.0):
        self.state = state
        self._nominal_size_mb = nominal_size_mb

    def snapshot(self) -> bytes:
        return pickle.dumps(self.state, protocol=pickle.HIGHEST_PROTOCOL)

    def restore(self, snapshot: bytes) -> None:
        self.state = pickle.loads(snapshot)

    def state_size_mb(self) -> float:
        return self._nominal_size_mb
