"""The action abstraction: deterministic state transitions.

An :class:`Action` is a self-contained, deterministic mutation of the
application state.  Determinism is the application's obligation (Section 4
of the paper): anything non-deterministic -- timestamps, random draws --
must be computed *before* the action is constructed and passed in as
arguments, so every replica applies byte-identical transitions.
"""

from __future__ import annotations

from typing import Any, Optional


class Action:
    """Base class for replicated actions.

    Subclasses implement :meth:`apply`, which receives the application
    object and returns the operation result.  ``apply`` must be
    deterministic: same state + same action => same new state and result
    on every replica.

    ``cpu_cost_s`` is the simulated CPU time charged when a replica
    executes the action (defaults to the runtime's configured cost);
    ``size_mb`` is its wire/log footprint.
    """

    cpu_cost_s: Optional[float] = None
    size_mb: float = 0.0004

    def apply(self, app: Any) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class Barrier(Action):
    """A no-op action used to linearize reads.

    Executing a barrier and then reading locally yields a linearizable
    read: the barrier's position in the total order guarantees the local
    state reflects every update ordered before the read was issued.
    """

    cpu_cost_s = 0.00002
    size_mb = 0.0001

    def apply(self, app: Any) -> None:
        return None
