"""The Treplica runtime: state machine, applier, and autonomous recovery.

One :class:`TreplicaRuntime` lives on each replica node.  It wires the
application to the asynchronous persistent queue:

* ``execute(action)`` -- the state-machine interface: enqueue the action
  and block until it has been applied locally (the paper's synchronous
  ``execute()`` semantics);
* the **applier** process dequeues actions in total order and applies
  them, charging per-action CPU (every replica executes every update,
  which is what makes write-heavy workloads scale sublinearly);
* the **checkpoint loop** periodically snapshots the application;
* **recovery** (``get_state()`` in the paper): a rebooted replica loads
  its latest local checkpoint in chunks -- disk reads and deserialization
  CPU interleaved -- while, *in parallel*, the queue learns the missed
  suffix from the peers; once the backlog is re-applied the replica
  reports ready and rejoins service.  If the peers already truncated the
  needed suffix, a full remote checkpoint transfer runs instead.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.obs.recorder import recorder_of
from repro.obs.registry import registry_of
from repro.obs.trace import current_trace, spans_of
from repro.paxos.messages import Command
from repro.sim.core import Event, Simulator
from repro.sim.disk import WriteAheadLog
from repro.sim.node import Node
from repro.sim.rng import SeedTree
from repro.sim.trace import emit as trace_emit
from repro.treplica.actions import Action
from repro.treplica.application import Application
from repro.treplica.checkpoint import CheckpointManager, CheckpointRecord
from repro.treplica.config import TreplicaConfig
from repro.treplica.queue import PersistentQueue

TREPLICA_PORT = "treplica"


class TreplicaRuntime:
    """Per-replica middleware instance (recreated on every reboot)."""

    def __init__(self, node: Node, replica_names: List[str], my_id: int,
                 app: Application, config: Optional[TreplicaConfig] = None,
                 seed: Optional[SeedTree] = None):
        self.node = node
        self.sim: Simulator = node.sim
        self.names = list(replica_names)
        self.my_id = my_id
        self.app = app
        self.config = config or TreplicaConfig()
        self._seed = seed or SeedTree(0)

        self._spans = spans_of(self.sim)
        self._recorder = recorder_of(self.sim)
        wal = WriteAheadLog(self.sim, node.disk,
                            name=f"{node.name}-queue-wal", node=node)
        # Scrub before anything reads durable state back: verify the log's
        # CRC frames, drop a torn/corrupted suffix, discard unreadable
        # checkpoint slots.  A no-op (and skipped entirely) on a healthy
        # disk with no storage nemesis attached.
        self.scrub_report = self._scrub_storage(wal)
        record = CheckpointManager.stored_record(node.disk)
        start_instance = record.instance + 1 if record is not None else 0
        self.queue = PersistentQueue(
            node, replica_names, my_id, self.config.paxos, self._seed,
            start_instance=start_instance, wal=wal,
            delivered_uids=getattr(record, "delivered_uids", frozenset())
            if record is not None else frozenset())
        self.engine = self.queue.engine
        self.engine.on_truncated_peer = self._request_remote_checkpoint
        if self.scrub_report is not None and self.scrub_report["fence"]:
            # The disk lost acked state: stay out of the acceptor role
            # until every peer has told us its high-water marks.
            self.engine.rejoin_fenced = True

        self.applied_up_to = start_instance - 1
        self._had_checkpoint = record is not None
        self._waiters: Dict[str, Event] = {}
        self._uid_counter = 0
        self.checkpoints = CheckpointManager(self)

        self.ready = False
        self.ready_event = self.sim.event()
        self.boot_started_at: Optional[float] = None
        self.recovered_at: Optional[float] = None
        self._remote_ckpt_requested_at: Optional[float] = None
        self.stats = {"executed": 0, "remote_transfers": 0}
        self._fence_replies: Dict[int, tuple] = {}
        # Applied-watermark target the recovery forensics wait for; only
        # armed (non-None) when span tracing is on.
        self._catchup_target: Optional[int] = None
        obs = registry_of(self.sim)
        self._obs_applied = obs.counter("treplica.applied_commands")
        self._obs_apply_latency = obs.histogram("treplica.apply_latency_s")
        self._obs_remote_transfers = obs.counter("treplica.remote_transfers")

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> None:
        """Bind to the queue and begin (re)covering; returns immediately."""
        self.boot_started_at = self.sim.now
        self.node.handle(TREPLICA_PORT, self._on_message)
        if not (self.config.sequential_recovery and self._had_checkpoint):
            # The paper's scheme: the queue starts resynchronizing the
            # backlog in parallel with the local checkpoint load.
            self.queue.start()
        if self.engine.rejoin_fenced:
            self.node.spawn(self._fence_loop(), name="treplica-fence")
        self.node.spawn(self._boot(), name="treplica-boot")

    def _boot(self):
        if self._had_checkpoint:
            yield from self._load_local_checkpoint()
            if self._spans is not None:
                self._spans.mark("recovery.checkpoint_loaded",
                                 self.node.name,
                                 instance=self.applied_up_to)
            if self._recorder is not None:
                self._recorder.record("recovery.checkpoint_loaded",
                                      self.node.name,
                                      instance=self.applied_up_to)
            if self.config.sequential_recovery:
                self.queue.start()  # ablation: resync only after the load
        self.node.spawn(self._applier(), name="treplica-applier")
        yield from self._wait_until_caught_up()
        self.ready = True
        self.recovered_at = self.sim.now
        trace_emit(self.sim, "treplica", self.node.name, event="ready",
                   recovered=self._had_checkpoint,
                   took_s=self.sim.now - self.boot_started_at)
        if self._recorder is not None:
            self._recorder.record("recovery.ready", self.node.name,
                                  recovered=self._had_checkpoint,
                                  took_s=round(
                                      self.sim.now - self.boot_started_at, 9))
        self.ready_event.succeed(self.sim.now)
        if self.checkpoints.last_instance < 0 or self._had_checkpoint:
            # Fresh replicas persist their initial state; recovered ones
            # refresh the checkpoint so the next crash replays less.
            yield from self.checkpoints.take()
        self.node.spawn(self.checkpoints.loop(), name="treplica-checkpoint")

    def _scrub_storage(self, wal: WriteAheadLog) -> Optional[dict]:
        """Verify durable state after a (possibly lying) disk's crash.

        Frame verification is metadata-speed bookkeeping piggybacked on
        the recovery reads the boot path pays for anyway, so no simulated
        time passes here.  Returns a report dict, or ``None`` when no
        storage nemesis is attached (the zero-cost path).
        """
        disk = self.node.disk
        self._storage_repair_pending = False
        if disk.nemesis is None:
            return None
        intact, dropped = wal.scrub()
        discarded = CheckpointManager.scrub_slots(disk)
        dirty = disk.dirty
        disk.dirty = False
        # A lost log suffix (torn tail, corrupt frame, or a crash that
        # revoked lied-about fsyncs) may include promises or votes this
        # replica no longer remembers: fence the acceptor role until the
        # peers' high-water marks are known.  A damaged checkpoint alone
        # loses no acceptor state.
        fence = dirty or dropped > 0
        report = {"frames_intact": intact, "frames_dropped": dropped,
                  "checkpoints_discarded": discarded, "dirty": dirty,
                  "fence": fence}
        obs = registry_of(self.sim)
        obs.counter("storage.frames_scrubbed").inc(intact + dropped)
        disk.nemesis.count("frames_scrubbed", intact + dropped)
        if dropped or discarded or dirty:
            self._storage_repair_pending = True
            obs.counter("storage.frames_dropped").inc(dropped)
            disk.nemesis.count("frames_dropped", dropped)
            if dropped:
                obs.counter("storage.suffix_truncations").inc()
                disk.nemesis.count("suffix_truncations")
            obs.counter("storage.checkpoint_discards").inc(discarded)
            disk.nemesis.count("checkpoint_discards", discarded)
            trace_emit(self.sim, "storage", self.node.name, event="scrub",
                       dropped=dropped, discarded=discarded, dirty=dirty)
            if self._spans is not None:
                self._spans.mark("recovery.scrub_started", self.node.name,
                                 dropped=dropped, discarded=discarded)
            if self._recorder is not None:
                self._recorder.record("recovery.scrub", self.node.name,
                                      dropped=dropped, discarded=discarded)
        return report

    def _fence_loop(self):
        """Nag the peers for fence_info until the rejoin fence installs."""
        interval = max(2 * self.config.paxos.heartbeat_interval_s, 0.2)
        while self.engine.rejoin_fenced:
            for peer, name in enumerate(self.names):
                if peer != self.my_id and peer not in self._fence_replies:
                    self.node.send(name, TREPLICA_PORT, ("fence_req",),
                                   size_mb=0.0002)
            yield self.sim.timeout(interval)

    def _on_fence_reply(self, src: str, instance_high: int,
                        round_high: int) -> None:
        if not self.engine.rejoin_fenced:
            return
        try:
            peer = self.names.index(src)
        except ValueError:
            return
        self._fence_replies[peer] = (instance_high, round_high)
        expected = set(range(len(self.names))) - {self.my_id}
        if not expected <= set(self._fence_replies):
            return
        # Every peer answered: the element-wise maximum bounds everything
        # this replica could have promised or voted and forgotten --
        # any quorum it ever joined contains a peer that remembers.
        self.engine.install_rejoin_fence(
            max(v[0] for v in self._fence_replies.values()),
            max(v[1] for v in self._fence_replies.values()))
        registry_of(self.sim).counter("storage.rejoin_fences").inc()
        if self.node.disk.nemesis is not None:
            self.node.disk.nemesis.count("rejoin_fences")

    def _load_local_checkpoint(self):
        """Chunked checkpoint load: disk reads + deserialization CPU.

        Runs while the queue is already learning the missed suffix from
        the peers -- the parallelism the paper credits for levelling
        write-heavy recovery times (Section 5.4).
        """
        node = self.node
        record = CheckpointManager.stored_record(node.disk)
        if record is None:  # crashed before the first checkpoint completed
            return
        chunks = max(1, math.ceil(record.size_mb / self.config.chunk_mb))
        chunk_mb = record.size_mb / chunks
        for _chunk in range(chunks):
            yield node.disk.read(chunk_mb)
            yield node.cpu.request(self.config.restore_cpu_s_per_mb * chunk_mb)
        self.app.restore(record.snapshot)
        self.applied_up_to = max(self.applied_up_to, record.instance)

    def _mark_caught_up(self) -> None:
        """Emit the catch-up milestone on every attached observer."""
        if self._spans is not None:
            self._spans.mark("recovery.caught_up", self.node.name,
                             instance=self.applied_up_to)
        if self._recorder is not None:
            self._recorder.record("recovery.caught_up", self.node.name,
                                  instance=self.applied_up_to)

    def _wait_until_caught_up(self):
        """Ready once the backlog that existed at boot has been applied."""
        poll = max(2 * self.config.paxos.heartbeat_interval_s, 0.2)
        yield self.sim.timeout(poll)  # hear a round of peer watermarks
        marks = self.engine.peer_watermarks
        target = max([self.engine.watermark, self.applied_up_to]
                     + list(marks.values()))
        if self._spans is not None or self._recorder is not None:
            # The catch-up milestone fires the moment the applied
            # watermark crosses the target (see _applier), not at the
            # next poll -- the forensics want the true crossing time.
            if self.applied_up_to >= target:
                self._mark_caught_up()
            else:
                self._catchup_target = target
        while self.applied_up_to < target:
            yield self.sim.timeout(poll / 2)

    # ==================================================================
    # the state-machine programming interface
    # ==================================================================
    def execute(self, action: Action):
        """Generator: totally order ``action``, apply it locally, return
        its result.  Usage: ``result = yield from runtime.execute(a)``."""
        self._uid_counter += 1
        uid = (f"{self.node.name}.{self.node.incarnation}"
               f":a{self._uid_counter}")
        waiter = self.sim.event()
        self._waiters[uid] = waiter
        span = None
        if self._spans is not None:
            span = self._spans.begin("execute", self.node.name,
                                     trace=current_trace(self.sim), uid=uid)
        self.engine.submit(Command(uid, action, size_mb=action.size_mb))
        result = yield waiter
        if span is not None:
            self._spans.finish(span)
        return result

    def read(self, fn: Callable[[Application], Any]) -> Any:
        """Run a read-only function against the local consistent state.

        Reads never touch the queue (the paper: read interactions are
        fulfilled locally); callers pay their CPU cost at the web tier.
        """
        return fn(self.app)

    def get_state(self) -> Any:
        """The paper's ``getState()``: latest consistent local snapshot."""
        return self.app.snapshot()

    def linearizable_read(self, fn: Callable[[Application], Any]):
        """Generator: a read that reflects every update ordered before it.

        Local reads (:meth:`read`) can be stale on a lagging replica; this
        totally orders a no-op barrier first, so the local state is at
        least as fresh as the read's position in the order.  Costs one
        consensus round trip -- use for read-your-writes critical paths.
        """
        from repro.treplica.actions import Barrier
        yield from self.execute(Barrier())
        return self.read(fn)

    # ==================================================================
    # applier
    # ==================================================================
    def _applier(self):
        config = self.config
        while True:
            instance, items = yield self.queue.dequeue_batch()
            if instance <= self.applied_up_to:
                continue  # covered by a checkpoint/state transfer
            if items:
                dequeued_at = self.sim.now
                total_cost = sum(
                    action.cpu_cost_s if action.cpu_cost_s is not None
                    else config.default_action_cpu_s
                    for _uid, action in items)
                yield self.node.cpu.request(total_cost)
                # Apply latency: CPU queueing + execution for this
                # instance (decided-to-dequeued time is covered by the
                # queue-depth gauge the harness registers).
                self._obs_apply_latency.observe(self.sim.now - dequeued_at)
                # The whole instance applies atomically (one event), so a
                # checkpoint can never observe a half-applied batch.
                for uid, action in items:
                    result = action.apply(self.app)
                    self.stats["executed"] += 1
                    self._obs_applied.inc()
                    waiter = self._waiters.pop(uid, None)
                    if waiter is not None and not waiter.triggered:
                        # The local client observes completion here: from
                        # its point of view the command is durable.  The
                        # safety checker holds the cluster to that.
                        trace_emit(self.sim, "ack", self.node.name,
                                   uid=uid, instance=instance)
                        waiter.succeed(result)
                if self._spans is not None:
                    self._spans.complete("apply", self.node.name,
                                         start=dequeued_at,
                                         instance=instance,
                                         commands=len(items))
            self.applied_up_to = max(self.applied_up_to, instance)
            if (self._catchup_target is not None
                    and self.applied_up_to >= self._catchup_target):
                self._catchup_target = None
                self._mark_caught_up()

    # ==================================================================
    # remote checkpoint transfer (peers truncated our backlog)
    # ==================================================================
    def _request_remote_checkpoint(self, peer: int) -> None:
        now = self.sim.now
        if (self._remote_ckpt_requested_at is not None
                and now - self._remote_ckpt_requested_at < 5.0):
            return
        self._remote_ckpt_requested_at = now
        self.node.send(self.names[peer], TREPLICA_PORT,
                       ("ckpt_req", self.applied_up_to), size_mb=0.0002)

    def _on_message(self, payload, src: str) -> None:
        kind = payload[0]
        if kind == "ckpt_req":
            self.node.spawn(self._serve_checkpoint(src), name="ckpt-serve")
        elif kind == "ckpt":
            record = payload[1]
            self.node.spawn(self._install_remote_checkpoint(record),
                            name="ckpt-install")
        elif kind == "fence_req":
            # Served even before this replica is ready: fence_info only
            # reads engine high-water marks, which a booting engine
            # restored from its own (scrubbed) log.
            self.node.send(src, TREPLICA_PORT,
                           ("fence",) + self.engine.fence_info(),
                           size_mb=0.0002)
        elif kind == "fence":
            self._on_fence_reply(src, payload[1], payload[2])

    def _serve_checkpoint(self, requester: str):
        record = CheckpointManager.stored_record(self.node.disk)
        if record is None:
            return
        yield self.node.disk.read(record.size_mb)
        self.node.send(requester, TREPLICA_PORT, ("ckpt", record),
                       size_mb=record.size_mb)

    def _install_remote_checkpoint(self, record: CheckpointRecord):
        if record.instance <= self.applied_up_to:
            return
        chunks = max(1, math.ceil(record.size_mb / self.config.chunk_mb))
        chunk_mb = record.size_mb / chunks
        for _chunk in range(chunks):
            yield self.node.cpu.request(
                self.config.restore_cpu_s_per_mb * chunk_mb)
        self.app.restore(record.snapshot)
        self.applied_up_to = max(self.applied_up_to, record.instance)
        self.engine.fast_forward(
            record.instance,
            delivered_uids=getattr(record, "delivered_uids", ()))
        self.stats["remote_transfers"] += 1
        self._obs_remote_transfers.inc()
        if self._storage_repair_pending:
            # This transfer replaces state the scrub had to throw away.
            self._storage_repair_pending = False
            obs = registry_of(self.sim)
            obs.counter("storage.peer_repairs").inc()
            obs.counter("storage.repair_mb").inc(record.size_mb)
            if self.node.disk.nemesis is not None:
                self.node.disk.nemesis.count("peer_repairs")
                self.node.disk.nemesis.count("repair_mb", record.size_mb)
            trace_emit(self.sim, "storage", self.node.name,
                       event="repaired_from_peer", instance=record.instance)
            if self._spans is not None:
                self._spans.mark("recovery.repaired_from_peer",
                                 self.node.name, instance=record.instance,
                                 size_mb=round(record.size_mb, 3))
            if self._recorder is not None:
                self._recorder.record("recovery.repaired_from_peer",
                                      self.node.name,
                                      instance=record.instance,
                                      size_mb=round(record.size_mb, 3))
        if self._spans is not None:
            self._spans.mark("recovery.checkpoint_transferred",
                             self.node.name, instance=record.instance)
        if self._recorder is not None:
            self._recorder.record("recovery.checkpoint_transferred",
                                  self.node.name, instance=record.instance)
        if (self._catchup_target is not None
                and self.applied_up_to >= self._catchup_target):
            self._catchup_target = None
            self._mark_caught_up()


class StateMachine:
    """The paper's 8-method programming interface, bound to one runtime.

    Thin facade over :class:`TreplicaRuntime` matching the description in
    Section 2: a black-box application whose public methods are executed
    as generic actions.
    """

    def __init__(self, runtime: TreplicaRuntime):
        self._runtime = runtime

    def execute(self, action: Action):
        """Blocking execute: ``result = yield from machine.execute(a)``."""
        return (yield from self._runtime.execute(action))

    def get_state(self) -> Any:
        return self._runtime.get_state()

    def read(self, fn: Callable[[Application], Any]) -> Any:
        return self._runtime.read(fn)

    @property
    def ready(self) -> bool:
        return self._runtime.ready
