"""Checkpointing: periodic durable snapshots of the application state.

A checkpoint bounds recovery work: a rebooted replica loads the snapshot
from its local disk and only replays the queue suffix past it.  Snapshots
are taken atomically (between simulator events), then serialized and
written in chunks so that Paxos group commits interleave with the bulk
write instead of stalling behind it.  The record is committed with a final
small write, so a crash mid-checkpoint leaves the previous record intact
(shadow-update discipline).

Commit records alternate between two slots (``treplica:checkpoint:a`` /
``:b``), so even a *torn* commit -- a storage fault that leaves an
unreadable payload under the key instead of atomically dropping the write
-- damages only the newest slot; the recovery-time scrub discards corrupt
slots and falls back to the surviving one, or to peer state transfer when
both are gone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional

from repro.obs.registry import registry_of
from repro.sim.trace import emit as trace_emit


CHECKPOINT_KEY = "treplica:checkpoint"

#: the two alternating commit-record slots (shadow-update discipline);
#: the bare legacy key is still read for pre-slot disks.
CHECKPOINT_SLOTS = (CHECKPOINT_KEY + ":a", CHECKPOINT_KEY + ":b")


@dataclass(frozen=True)
class CheckpointRecord:
    """What is durably stored: the applied instance, the opaque snapshot,
    the nominal state size that drives simulated load timing, and the
    delivery-dedup memory for the covered prefix (uids first delivered at
    or below ``instance`` -- without it a rebooted replica would re-apply
    a command that consensus decided a second time after the checkpoint)."""

    instance: int
    snapshot: Any
    size_mb: float
    taken_at: float
    delivered_uids: FrozenSet[str] = frozenset()


class CheckpointManager:
    """Periodic checkpoint loop for one replica's runtime."""

    def __init__(self, runtime) -> None:
        self._runtime = runtime
        self.last_instance: int = -1
        self.checkpoints_taken = 0
        existing = self.stored_record(runtime.node.disk)
        if existing is not None:
            self.last_instance = existing.instance
        obs = registry_of(runtime.sim)
        self._obs_checkpoints = obs.counter("treplica.checkpoints")
        self._obs_ckpt_size = obs.histogram("treplica.checkpoint_size_mb",
                                            lo=0.01, hi=1e4)
        self._obs_ckpt_duration = obs.histogram(
            "treplica.checkpoint_duration_s")

    # ------------------------------------------------------------------
    def loop(self):
        config = self._runtime.config
        while True:
            yield self._runtime.sim.timeout(config.checkpoint_interval_s)
            yield from self.take()

    def take(self):
        """Generator: snapshot now, then pay serialization CPU and disk."""
        runtime = self._runtime
        node = runtime.node
        config = runtime.config
        instance = runtime.applied_up_to
        initial = (self.checkpoints_taken == 0
                   and self.stored_record(node.disk) is None)
        if instance <= self.last_instance and not initial:
            return None
        snapshot = runtime.app.snapshot()  # atomic within this event
        size_mb = runtime.app.state_size_mb()
        started_at = node.sim.now
        record = CheckpointRecord(
            instance, snapshot, size_mb, node.sim.now,
            delivered_uids=runtime.engine.delivered_up_to(instance))
        chunks = max(1, math.ceil(size_mb / config.chunk_mb))
        chunk_mb = size_mb / chunks
        for _chunk in range(chunks):
            # Background class: checkpointing must not starve live traffic.
            yield node.cpu.request(config.checkpoint_cpu_s_per_mb * chunk_mb,
                                   priority=1)
            yield node.disk.write(chunk_mb)
        yield node.disk.write_object(self._next_slot(node.disk), record,
                                     0.001)
        self.last_instance = instance
        self.checkpoints_taken += 1
        self._obs_checkpoints.inc()
        self._obs_ckpt_size.observe(size_mb)
        self._obs_ckpt_duration.observe(node.sim.now - started_at)
        trace_emit(node.sim, "checkpoint", node.name, instance=instance,
                   size_mb=round(size_mb, 2))
        spans = getattr(node.sim, "spans", None)
        if spans is not None:
            spans.complete("checkpoint", node.name, start=started_at,
                           instance=instance, size_mb=round(size_mb, 3))
        recorder = getattr(node.sim, "recorder", None)
        if recorder is not None:
            recorder.record("checkpoint.taken", node.name,
                            instance=instance, size_mb=round(size_mb, 3))
        floor = instance + 1 - config.log_retain_instances
        if floor > 0:
            runtime.engine.truncate_below(floor)
        return record

    # ------------------------------------------------------------------
    @staticmethod
    def _slot_records(disk):
        for key in CHECKPOINT_SLOTS + (CHECKPOINT_KEY,):
            record = disk.peek(key)
            if isinstance(record, CheckpointRecord):
                yield key, record

    @classmethod
    def _next_slot(cls, disk) -> str:
        """The slot to overwrite: the one *not* holding the newest record."""
        newest_key = None
        newest_instance = -1
        for key, record in cls._slot_records(disk):
            if key in CHECKPOINT_SLOTS and record.instance > newest_instance:
                newest_key, newest_instance = key, record.instance
        if newest_key == CHECKPOINT_SLOTS[0]:
            return CHECKPOINT_SLOTS[1]
        return CHECKPOINT_SLOTS[0]

    @classmethod
    def stored_record(cls, disk) -> Optional[CheckpointRecord]:
        """The latest valid durable checkpoint on ``disk`` (metadata peek).

        Slots holding anything other than a :class:`CheckpointRecord`
        (notably a torn/corrupted payload) are ignored.
        """
        best = None
        for _key, record in cls._slot_records(disk):
            if best is None or record.instance > best.instance:
                best = record
        return best

    @staticmethod
    def scrub_slots(disk) -> int:
        """Drop unreadable checkpoint slots; return how many were dropped.

        The simulated analogue of a payload-checksum failure on the commit
        record: a slot whose stored value is a :class:`CorruptObject` (or
        any non-record garbage) is deleted so it can never be loaded.
        """
        dropped = 0
        for key in CHECKPOINT_SLOTS + (CHECKPOINT_KEY,):
            if disk.contains(key) and not isinstance(disk.peek(key),
                                                     CheckpointRecord):
                disk.delete(key)
                dropped += 1
        return dropped
