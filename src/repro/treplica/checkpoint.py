"""Checkpointing: periodic durable snapshots of the application state.

A checkpoint bounds recovery work: a rebooted replica loads the snapshot
from its local disk and only replays the queue suffix past it.  Snapshots
are taken atomically (between simulator events), then serialized and
written in chunks so that Paxos group commits interleave with the bulk
write instead of stalling behind it.  The record is committed with a final
small write, so a crash mid-checkpoint leaves the previous record intact
(shadow-update discipline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.registry import registry_of
from repro.sim.trace import emit as trace_emit


CHECKPOINT_KEY = "treplica:checkpoint"


@dataclass(frozen=True)
class CheckpointRecord:
    """What is durably stored: the applied instance, the opaque snapshot,
    and the nominal state size that drives simulated load timing."""

    instance: int
    snapshot: Any
    size_mb: float
    taken_at: float


class CheckpointManager:
    """Periodic checkpoint loop for one replica's runtime."""

    def __init__(self, runtime) -> None:
        self._runtime = runtime
        self.last_instance: int = -1
        self.checkpoints_taken = 0
        existing = runtime.node.disk.peek(CHECKPOINT_KEY)
        if existing is not None:
            self.last_instance = existing.instance
        obs = registry_of(runtime.sim)
        self._obs_checkpoints = obs.counter("treplica.checkpoints")
        self._obs_ckpt_size = obs.histogram("treplica.checkpoint_size_mb",
                                            lo=0.01, hi=1e4)
        self._obs_ckpt_duration = obs.histogram(
            "treplica.checkpoint_duration_s")

    # ------------------------------------------------------------------
    def loop(self):
        config = self._runtime.config
        while True:
            yield self._runtime.sim.timeout(config.checkpoint_interval_s)
            yield from self.take()

    def take(self):
        """Generator: snapshot now, then pay serialization CPU and disk."""
        runtime = self._runtime
        node = runtime.node
        config = runtime.config
        instance = runtime.applied_up_to
        initial = (self.checkpoints_taken == 0
                   and self.stored_record(node.disk) is None)
        if instance <= self.last_instance and not initial:
            return None
        snapshot = runtime.app.snapshot()  # atomic within this event
        size_mb = runtime.app.state_size_mb()
        started_at = node.sim.now
        record = CheckpointRecord(instance, snapshot, size_mb, node.sim.now)
        chunks = max(1, math.ceil(size_mb / config.chunk_mb))
        chunk_mb = size_mb / chunks
        for _chunk in range(chunks):
            # Background class: checkpointing must not starve live traffic.
            yield node.cpu.request(config.checkpoint_cpu_s_per_mb * chunk_mb,
                                   priority=1)
            yield node.disk.write(chunk_mb)
        yield node.disk.write_object(CHECKPOINT_KEY, record, 0.001)
        self.last_instance = instance
        self.checkpoints_taken += 1
        self._obs_checkpoints.inc()
        self._obs_ckpt_size.observe(size_mb)
        self._obs_ckpt_duration.observe(node.sim.now - started_at)
        trace_emit(node.sim, "checkpoint", node.name, instance=instance,
                   size_mb=round(size_mb, 2))
        spans = getattr(node.sim, "spans", None)
        if spans is not None:
            spans.complete("checkpoint", node.name, start=started_at,
                           instance=instance, size_mb=round(size_mb, 3))
        floor = instance + 1 - config.log_retain_instances
        if floor > 0:
            runtime.engine.truncate_below(floor)
        return record

    # ------------------------------------------------------------------
    @staticmethod
    def stored_record(disk) -> Optional[CheckpointRecord]:
        """The latest durable checkpoint on ``disk`` (metadata peek)."""
        return disk.peek(CHECKPOINT_KEY)
