"""Treplica runtime tunables (simulated seconds / MB)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.paxos.config import PaxosConfig


@dataclass(frozen=True)
class TreplicaConfig:
    """Middleware knobs layered over :class:`~repro.paxos.config.PaxosConfig`."""

    paxos: PaxosConfig = field(default_factory=PaxosConfig)

    # Checkpointing: period between snapshots, CPU cost to serialize a MB
    # of state, and the disk-write chunk size (chunking lets the Paxos
    # write-ahead log group-commit between checkpoint chunks).
    checkpoint_interval_s: float = 120.0
    checkpoint_cpu_s_per_mb: float = 0.004
    chunk_mb: float = 8.0

    # Recovery: CPU cost to deserialize state.  Combined with the disk
    # read bandwidth this sets the paper's checkpoint-load rate; the
    # default lands near 8 MB/s effective, reproducing recovery times in
    # the tens of seconds for the paper's 300-700 MB states.
    restore_cpu_s_per_mb: float = 0.105

    # Default CPU charge for executing one action (applications override
    # per action via ``Action.cpu_cost_s``).
    default_action_cpu_s: float = 0.0003

    # Decided-log retention (instances kept beyond the checkpoint) so
    # recovering peers can resynchronize from the queue instead of needing
    # a full remote state transfer.
    log_retain_instances: int = 50_000

    # Ablation knob: load the checkpoint *before* binding to the queue
    # (serializing the two recovery state transfers) instead of the
    # paper's parallel scheme.  Used by the recovery ablation bench.
    sequential_recovery: bool = False
