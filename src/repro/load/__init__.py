"""Load generation models (closed-loop RBE fleet vs open-loop arrivals).

``build_load`` is the one place both cluster builders
(:class:`repro.harness.cluster.RobustStoreCluster` and
:class:`repro.shard.cluster.ShardedCluster`) construct their load tier,
dispatching on ``ClusterConfig.load_mode``:

* ``"closed"`` -- the paper's per-client RBE fleet, byte-identical to
  the historical inline loop (same seed-fork names in the same order);
* ``"open"`` -- one :class:`OpenLoopLoadSource` per client node, each
  carrying an equal share of the offered WIPS (see
  :mod:`repro.load.open_loop`).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.load.open_loop import OpenLoopLoadSource, class_mix, class_rates

__all__ = ["OpenLoopLoadSource", "class_mix", "class_rates", "build_load"]


def build_load(client_nodes, proxy_name, profile, collector, seed,
               config) -> Tuple[list, List[OpenLoopLoadSource]]:
    """Build and start the configured load tier.

    Returns ``(rbes, sources)``; exactly one of the two lists is
    non-empty.
    """
    rbes: list = []
    sources: List[OpenLoopLoadSource] = []
    retry = config.retry_policy()
    propagate = config.defenses
    if config.load_mode == "open":
        n = len(client_nodes)
        share = config.effective_offered_wips / n
        for k, node in enumerate(client_nodes):
            source = OpenLoopLoadSource(
                node, proxy_name, profile, collector,
                seed.fork(f"open-load-{k}"),
                source_id=k, wips=share,
                population=config.effective_population,
                arrival=config.arrival,
                timeout_s=config.scaled_rbe_timeout_s,
                retry=retry, propagate_deadline=propagate)
            source.start()
            sources.append(source)
        return rbes, sources
    # Closed loop: the historical RBE fleet, fork names unchanged so
    # pre-existing runs stay bit-for-bit reproducible.  The retry stream
    # is a NEW named fork created only when retries are on, so enabling
    # it cannot shift any historical stream.
    from repro.tpcw.rbe import RemoteBrowserEmulator
    for k in range(config.num_rbes):
        node = client_nodes[k % len(client_nodes)]
        retry_rng = (seed.fork_random(f"retry-rbe-{k}")
                     if retry is not None and retry.enabled else None)
        rbe = RemoteBrowserEmulator(
            node, proxy_name, profile, collector,
            seed.fork_random(f"rbe-{k}"),
            rbe_id=k + 1,
            think_time_s=config.think_time_s,
            timeout_s=config.scaled_rbe_timeout_s,
            use_navigation=config.use_navigation,
            retry=retry, retry_rng=retry_rng,
            propagate_deadline=propagate)
        rbe.start()
        rbes.append(rbe)
    return rbes, sources
