"""Aggregated open-loop load: arrival processes instead of client processes.

The paper's closed-loop RBE model (``repro.tpcw.rbe``) allocates one
simulated process per emulated browser, so kernel work grows with the
*population* -- thousands of users are the practical ceiling.  This module
replaces the fleet with **one arrival process per TPC-W interaction
class**: class ``c`` fires requests at rate ``lambda_c = wips * pi_c``,
where ``pi`` is the stationary distribution of the profile's fitted CBMG
navigation chain (:mod:`repro.tpcw.navigation`), so the long-run
interaction mix is exactly the paper's browsing/shopping/ordering mix.

The emulated *population* is then only an id space: each arrival draws a
customer slot uniformly from ``[1, population]`` for proxy hashing and
session continuity.  A million emulated users costs the same kernel work
as a thousand -- per-arrival cost is O(1) and there is no per-user
process.  Arrivals are open-loop: the offered rate does not back off when
response times inflate, which is the standard "open vs closed" modelling
distinction (and the reason saturated open-loop runs show unbounded
queues where closed-loop runs show capped WIPS).

Determinism: every gap, class pick, and session draw comes from named
:class:`~repro.sim.rng.SeedTree` streams, so a run is bit-for-bit
reproducible from the experiment seed, like the closed-loop fleet.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.faults.metrics import MetricsCollector
from repro.obs.registry import registry_of
from repro.resilience.retry import RetryPolicy
from repro.sim.node import Node
from repro.sim.rng import SeedTree
from repro.tpcw.workload import Interaction, WorkloadProfile
from repro.web.http import REQUEST_SIZE_MB, Request, Response
from repro.web.proxy import CLIENT_IN_PORT

#: Cached per-profile class-probability vectors (sum to 1.0).
_MIX_CACHE: Dict[str, List[Tuple[Interaction, float]]] = {}

#: Touched-user session cache bound; far above what a test run touches,
#: far below a million-user id space.
_SESSION_CACHE_MAX = 200_000


def class_mix(profile: WorkloadProfile) -> List[Tuple[Interaction, float]]:
    """Per-class probabilities from the profile's CBMG stationary mix.

    Derived from the fitted navigation chain (not the raw mix table) so
    open-loop rates match what a navigating closed-loop fleet converges
    to; the fit drives the two together to ~1e-10.
    """
    cached = _MIX_CACHE.get(profile.name)
    if cached is None:
        from repro.tpcw.navigation import (_ORDER, Navigator,
                                           fit_transition_matrix,
                                           stationary_distribution)
        matrix = Navigator._matrix_cache.get(profile.name)
        if matrix is None:
            matrix = fit_transition_matrix(profile)
            Navigator._matrix_cache[profile.name] = matrix
        pi = stationary_distribution(matrix)
        total = float(pi.sum())
        cached = [(interaction, float(p) / total)
                  for interaction, p in zip(_ORDER, pi) if p > 0.0]
        _MIX_CACHE[profile.name] = cached
    return cached


def class_rates(profile: WorkloadProfile,
                wips: float) -> List[Tuple[Interaction, float]]:
    """Per-class arrival rates (interactions/s) summing to ``wips``."""
    return [(interaction, wips * p) for interaction, p in class_mix(profile)]


class OpenLoopLoadSource:
    """One aggregated request source living on a client node.

    Mirrors the externally visible behaviour of an RBE fleet slice --
    requests into the proxy's ``http-in`` port, collector/observability
    records per interaction, session continuity per emulated user, a
    client-side timeout -- without any per-user process.  Timeouts are
    swept by a single deadline-ordered reaper timer instead of one timer
    per request, so the pending-request bookkeeping is O(1) per arrival.
    """

    def __init__(self, node: Node, proxy_name: str, profile: WorkloadProfile,
                 collector: MetricsCollector, seed: SeedTree, *,
                 source_id: int, wips: float, population: int,
                 arrival: str = "poisson", timeout_s: float = 10.0,
                 retry: Optional[RetryPolicy] = None,
                 propagate_deadline: bool = False):
        if wips <= 0:
            raise ValueError(f"open-loop wips must be positive, got {wips}")
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        if arrival not in ("poisson", "deterministic"):
            raise ValueError(f"unknown arrival process: {arrival!r}")
        self.node = node
        self.proxy_name = proxy_name
        self.profile = profile
        self.collector = collector
        self.source_id = source_id
        self.wips = wips
        self.population = population
        self.arrival = arrival
        self.timeout_s = timeout_s
        self.reply_port = f"open-{source_id}"
        self.rates = class_rates(profile, wips)
        # One named RNG stream per class (gaps + user draws) keeps the
        # arrival sequence of one class independent of every other's.
        self._class_rngs = {
            interaction: seed.fork_random(
                f"open-{source_id}-{interaction.value}")
            for interaction, _rate in self.rates}
        self._session_rng = seed.fork_random(f"open-{source_id}-sessions")
        # Client retry policy (repro.resilience): a failed attempt is
        # re-sent under a fresh req_id after the policy's backoff and only
        # the final outcome is recorded.  The retry stream is forked only
        # when retries are on; it is drawn from only for jittered backoff,
        # so the arrival/session streams never shift.
        self.retry = retry
        self._retry_rng = (seed.fork_random(f"open-{source_id}-retry")
                           if retry is not None and retry.enabled else None)
        self._retry_budget = retry.make_budget() if retry is not None else None
        self.propagate_deadline = propagate_deadline
        self.retries_sent = 0
        self.retries_denied = 0
        self._req_seq = itertools.count(1)
        # req_id -> (first sent_at, interaction, user id, root span, attempt)
        self._pending: Dict[
            str, Tuple[float, Interaction, int, object, int]] = {}
        # (deadline, req_id) in send order == deadline order.
        self._expiry: Deque[Tuple[float, str]] = deque()
        self._reaper_armed = False
        # Session continuity for *touched* users only.
        self._sessions: Dict[int, Dict[str, object]] = {}
        self.issued = 0
        self.timed_out = 0
        self._spans = getattr(node.sim, "spans", None)
        obs = registry_of(node.sim)
        self._obs_ok = obs.counter("web.interactions_ok")
        self._obs_error = obs.counter("web.interactions_error")
        self._obs_wirt = obs.histogram("web.wirt_s", lo=1e-4, hi=100.0)

    def start(self) -> None:
        self.node.handle(self.reply_port, self._on_response)
        for interaction, rate in self.rates:
            self.node.spawn(
                self._arrival_loop(interaction, rate),
                name=f"open-{self.source_id}-{interaction.value}")

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def _arrival_loop(self, interaction: Interaction, rate: float):
        sim = self.node.sim
        rng = self._class_rngs[interaction]
        if self.arrival == "deterministic":
            gap = 1.0 / rate
            # Deterministic arrivals start phase-shifted by the class RNG
            # so the classes do not all fire at the same instants.
            yield sim.timeout(rng.uniform(0.0, gap))
            while True:
                self._emit(interaction, rng)
                yield sim.timeout(gap)
        while True:
            yield sim.timeout(rng.expovariate(rate))
            self._emit(interaction, rng)

    def _emit(self, interaction: Interaction, rng) -> None:
        uid = 1 + rng.randrange(self.population)
        self._send(interaction, uid, self.node.sim.now, 0, None)

    def _send(self, interaction: Interaction, uid: int, first_sent_at: float,
              attempt: int, span) -> None:
        """Send one attempt (attempt 0 is the arrival itself)."""
        sim = self.node.sim
        session = self._sessions.get(uid)
        req_id = f"o{self.source_id}-{next(self._req_seq)}"
        request = Request(req_id, uid, self.node.name, self.reply_port,
                          interaction,
                          dict(session) if session else {},
                          sent_at=first_sent_at)
        if self.propagate_deadline:
            request.deadline = sim.now + self.timeout_s
        if self._spans is not None:
            request.trace = req_id
            if span is None:
                span = self._spans.begin("interaction", self.node.name,
                                         trace=req_id,
                                         interaction=interaction.value)
        if attempt == 0:
            self.issued += 1
            if self._retry_budget is not None:
                self._retry_budget.earn()
        else:
            self.retries_sent += 1
        self._pending[req_id] = (first_sent_at, interaction, uid, span,
                                 attempt)
        self._expiry.append((sim.now + self.timeout_s, req_id))
        self._arm_reaper()
        self.node.send(self.proxy_name, CLIENT_IN_PORT, request,
                       size_mb=REQUEST_SIZE_MB, trace=request.trace)

    # ------------------------------------------------------------------
    # retry path
    # ------------------------------------------------------------------
    def _should_retry(self, attempt: int) -> bool:
        policy = self.retry
        if policy is None or not policy.enabled \
                or attempt >= policy.attempts:
            return False
        if self._retry_budget is not None \
                and not self._retry_budget.try_spend():
            self.retries_denied += 1
            return False
        return True

    def _schedule_retry(self, interaction: Interaction, uid: int,
                        first_sent_at: float, attempt: int, span) -> None:
        delay = self.retry.delay_s(attempt, self._retry_rng)
        if delay > 0.0:
            self.node.sim.call_after(delay, self._send, interaction, uid,
                                     first_sent_at, attempt + 1, span)
        else:
            self._send(interaction, uid, first_sent_at, attempt + 1, span)

    # ------------------------------------------------------------------
    # completion and timeout paths
    # ------------------------------------------------------------------
    def _on_response(self, response: Response, src: str) -> None:
        entry = self._pending.pop(response.req_id, None)
        if entry is None:
            return  # already timed out; drop the stale response
        sent_at, interaction, uid, span, attempt = entry
        if not response.ok and self._should_retry(attempt):
            self._schedule_retry(interaction, uid, sent_at, attempt, span)
            return
        ok = response.ok
        error_kind = "" if ok else (response.error or "error")
        now = self.node.sim.now
        self.collector.record(sent_at, now, interaction, ok, error_kind)
        if ok:
            self._obs_ok.inc()
            self._obs_wirt.observe(now - sent_at)
            self._update_session(uid, interaction, response)
        else:
            self._obs_error.inc()
        if span is not None:
            self._spans.finish(span, ok=ok, error=error_kind)

    def _arm_reaper(self) -> None:
        if self._reaper_armed or not self._expiry:
            return
        self._reaper_armed = True
        deadline = self._expiry[0][0]
        self.node.sim.call_at(deadline, self._reap)

    def _reap(self) -> None:
        self._reaper_armed = False
        sim = self.node.sim
        now = sim.now
        while self._expiry and self._expiry[0][0] <= now:
            deadline, req_id = self._expiry.popleft()
            entry = self._pending.pop(req_id, None)
            if entry is None:
                continue  # answered in time
            sent_at, interaction, uid, span, attempt = entry
            self.timed_out += 1
            if self._should_retry(attempt):
                self._schedule_retry(interaction, uid, sent_at, attempt,
                                     span)
                continue
            self.collector.record(sent_at, deadline, interaction,
                                  False, "timeout")
            self._obs_error.inc()
            if span is not None:
                self._spans.finish(span, ok=False, error="timeout")
        self._arm_reaper()

    # ------------------------------------------------------------------
    # per-user session continuity (mirrors RBE._update_session)
    # ------------------------------------------------------------------
    def _update_session(self, uid: int, interaction: Interaction,
                        response: Response) -> None:
        data = response.data
        if data is None:
            return
        session = self._sessions.get(uid)
        if session is None:
            if len(self._sessions) >= _SESSION_CACHE_MAX:
                self._sessions.pop(next(iter(self._sessions)))
            session = self._sessions[uid] = {}
        if data.get("c_id") is not None:
            session["c_id"] = data["c_id"]
        if data.get("sc_id") is not None:
            session["sc_id"] = data["sc_id"]
        items = data.get("items")
        if items:
            chosen = self._session_rng.choice(items)
            session["i_id"] = (chosen[0] if isinstance(chosen, tuple)
                               else chosen)
        if interaction is Interaction.BUY_CONFIRM:
            session.pop("sc_id", None)
            session.pop("i_id", None)
