"""Event-kernel profiling: where does the wall clock go?

Attached to a :class:`repro.sim.core.Simulator` as ``sim.profiler``, the
:class:`KernelProfiler` times every event callback the kernel fires and
attributes it to a coarse layer (derived from the callback's module:
``repro.paxos.engine`` -> ``paxos``), so a run can report *events
processed per simulated second* and *wall-clock per event category* --
the baseline numbers any future hot-path optimisation has to beat.

The hook costs one attribute check per event when disabled (the kernel
tests ``sim.profiler is None``); when enabled it adds two
``perf_counter`` reads per event.
"""

from __future__ import annotations

import time
from typing import Callable, Dict


def category_of_module(module: str) -> str:
    """Map a callback's module to a coarse layer name.

    ``repro.paxos.engine`` -> ``paxos``; anything outside ``repro``
    keeps its top-level package name; unknowable callables -> ``other``.
    """
    if not module:
        return "other"
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


class KernelProfiler:
    """Per-category event counts and wall-clock, for one simulator."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.events = 0
        self.wall_s = 0.0
        # category -> [event count, wall seconds]
        self.by_category: Dict[str, list] = {}
        self._module_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def record(self, fn, wall_s: float) -> None:
        """Called by the kernel after each event callback returns."""
        self.events += 1
        self.wall_s += wall_s
        module = getattr(fn, "__module__", "") or ""
        category = self._module_cache.get(module)
        if category is None:
            category = self._module_cache[module] = category_of_module(module)
        entry = self.by_category.get(category)
        if entry is None:
            entry = self.by_category[category] = [0, 0.0]
        entry[0] += 1
        entry[1] += wall_s

    # ------------------------------------------------------------------
    def summary(self, sim_elapsed_s: float) -> dict:
        """JSON-serializable profile over ``sim_elapsed_s`` of sim time."""
        categories = {}
        for category, (count, wall) in sorted(
                self.by_category.items(),
                key=lambda item: item[1][1], reverse=True):
            categories[category] = {
                "events": count,
                "wall_s": round(wall, 6),
                "wall_us_per_event": round(1e6 * wall / count, 3)
                if count else 0.0,
            }
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "sim_s": sim_elapsed_s,
            "events_per_sim_s": round(self.events / sim_elapsed_s, 3)
            if sim_elapsed_s > 0 else 0.0,
            "events_per_wall_s": round(self.events / self.wall_s, 1)
            if self.wall_s > 0 else 0.0,
            "by_category": categories,
        }
