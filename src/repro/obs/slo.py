"""Declarative SLOs with multi-window, multi-burn-rate alerting.

An SLO spec is a comma-separated list of objectives::

    wirt_p99<2s,error_rate<1%

Three objective forms are accepted:

``wirt_pXX<T``
    Latency objective: at least XX% of interactions must complete
    within ``T`` (``2s``, ``500ms``, or a bare number of seconds).
    The error budget is the remaining ``(100-XX)%``; an interaction is
    *bad* when it errors or its WIRT exceeds ``T`` (a failed request is
    never "fast").
``error_rate<P%``
    Availability objective: the fraction of interactions that error
    must stay below ``P%``; the budget is ``P%``.
``availability>A%``
    Sugar for ``error_rate<(100-A)%``.

Latency thresholds are compared against **raw** WIRTs, exactly like the
paper's accuracy constraints in
:func:`repro.faults.metrics.wirt_compliance` (time compression shrinks
the experiment's timeline, not individual response times).  The burn
windows below, by contrast, are *timeline durations* and are compressed
through ``ExperimentScale.t()`` like faultload injection times and the
observability tick, so the same spec means the same thing at every
scale.

Evaluation follows the Google SRE workbook's multi-window
multi-burn-rate pattern: the burn rate is the bad fraction over a
trailing window divided by the budget (burn 1.0 = spending the budget
exactly; burn 10 = ten times too fast).  Two window pairs are checked
-- a *fast* pair (60 s long / 5 s short, threshold 14.4) that catches
abrupt outages like a crash, and a *slow* pair (600 s / 60 s,
threshold 6) that catches sustained degradation -- and an alert fires,
as a timestamped event, when **both** windows of a pair exceed the
pair's threshold (the short window gates on "still happening", which
keeps alerts from re-firing long after recovery).  The
:class:`SloEngine` runs as a simulation process ticking every short
window, reading the interaction stream the
:class:`repro.faults.metrics.MetricsCollector` already records, so
judgment happens *in sim time* and alerts land in the flight recorder
interleaved with the faults and failovers that caused them.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SloError",
    "Objective",
    "BurnWindow",
    "SloEngine",
    "parse_slo",
    "BURN_WINDOWS",
]


class SloError(ValueError):
    """Raised for an unparseable SLO spec."""


#: The two Google-SRE window pairs: (name, long_s, short_s, threshold),
#: windows in paper seconds.  Threshold 14.4 on the fast pair flags a
#: budget spent >14x too fast over the last minute; threshold 6 on the
#: slow pair flags sustained 6x overspend over ten minutes.
BURN_WINDOWS: Tuple[Tuple[str, float, float, float], ...] = (
    ("fast", 60.0, 5.0, 14.4),
    ("slow", 600.0, 60.0, 6.0),
)

_LATENCY_RE = re.compile(r"^wirt_p(\d{1,2}(?:\.\d+)?)$")
_TIME_RE = re.compile(r"^(\d+(?:\.\d+)?)(ms|s)?$")
_PCT_RE = re.compile(r"^(\d+(?:\.\d+)?)%$")


class Objective:
    """One parsed objective: a bad-event predicate plus an error budget."""

    __slots__ = ("name", "kind", "budget", "threshold_s")

    def __init__(self, name: str, kind: str, budget: float,
                 threshold_s: Optional[float] = None) -> None:
        self.name = name            # the spec token, verbatim
        self.kind = kind            # "latency" | "error_rate"
        self.budget = budget        # allowed bad fraction, (0, 1)
        self.threshold_s = threshold_s  # paper seconds (latency only)

    def is_bad(self, sent_at: float, done_at: float, ok: bool,
               scaled_threshold_s: Optional[float]) -> bool:
        if not ok:
            return True
        if self.kind == "latency":
            return (done_at - sent_at) > scaled_threshold_s
        return False

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name, "kind": self.kind, "budget": self.budget}
        if self.threshold_s is not None:
            out["threshold_s"] = self.threshold_s
        return out


def _parse_time_s(text: str, token: str) -> float:
    match = _TIME_RE.match(text)
    if not match:
        raise SloError(f"bad latency threshold {text!r} in SLO "
                       f"objective {token!r} (want e.g. 2s, 500ms)")
    value = float(match.group(1))
    if match.group(2) == "ms":
        value /= 1000.0
    if value <= 0.0:
        raise SloError(f"latency threshold must be positive in {token!r}")
    return value


def _parse_pct(text: str, token: str) -> float:
    match = _PCT_RE.match(text)
    if not match:
        raise SloError(f"bad percentage {text!r} in SLO objective "
                       f"{token!r} (want e.g. 1%, 99.9%)")
    return float(match.group(1))


def parse_slo(spec: str) -> List[Objective]:
    """Parse a spec like ``'wirt_p99<2s,error_rate<1%'``."""
    objectives: List[Objective] = []
    seen: set = set()
    for raw in spec.split(","):
        token = raw.strip()
        if not token:
            continue
        if ">" in token:
            name, _, value = token.partition(">")
            name, value = name.strip(), value.strip()
            if name != "availability":
                raise SloError(f"only 'availability' takes '>', got {token!r}")
            pct = _parse_pct(value, token)
            if not 0.0 < pct < 100.0:
                raise SloError(f"availability target must be in (0, 100), "
                               f"got {token!r}")
            objectives.append(Objective(token, "error_rate",
                                        (100.0 - pct) / 100.0))
        elif "<" in token:
            name, _, value = token.partition("<")
            name, value = name.strip(), value.strip()
            latency = _LATENCY_RE.match(name)
            if latency:
                pctile = float(latency.group(1))
                if not 0.0 < pctile < 100.0:
                    raise SloError(f"percentile must be in (0, 100), "
                                   f"got {token!r}")
                objectives.append(Objective(
                    token, "latency", (100.0 - pctile) / 100.0,
                    threshold_s=_parse_time_s(value, token)))
            elif name == "error_rate":
                pct = _parse_pct(value, token)
                if not 0.0 < pct < 100.0:
                    raise SloError(f"error-rate budget must be in (0, 100), "
                                   f"got {token!r}")
                objectives.append(Objective(token, "error_rate", pct / 100.0))
            else:
                raise SloError(
                    f"unknown SLO objective {token!r} "
                    f"(want wirt_pXX<T, error_rate<P%, availability>A%)")
        else:
            raise SloError(f"objective {token!r} has no comparison "
                           f"(want e.g. wirt_p99<2s)")
        if objectives[-1].name in seen:
            raise SloError(f"duplicate SLO objective {token!r}")
        seen.add(objectives[-1].name)
    if not objectives:
        raise SloError(f"empty SLO spec {spec!r}")
    return objectives


class _Identity:
    """Fallback scale for standalone use: paper seconds == sim seconds."""

    @staticmethod
    def t(seconds: float) -> float:
        return seconds


class SloEngine:
    """Evaluates objectives against the collector's interaction stream.

    Reads ``collector.samples`` (``(sent_at, done_at, interaction, ok,
    error_kind)``, appended in completion order) incrementally and
    keeps per-objective cumulative bad counts, so each tick costs
    O(new samples + log n) and never re-scans history.  The engine is
    passive: it schedules only its own timer, draws no randomness, and
    sends no messages, so enabling it leaves the rest of the run
    bit-for-bit unchanged (same discipline as the TimelineSampler).

    Alerts are dicts ``{"t", "objective", "window", "burn_long",
    "burn_short", "threshold"}`` appended on the rising edge of each
    (objective, window-pair) condition; they re-arm once the condition
    clears, and each firing/clearing is also recorded in the flight
    recorder (``slo.alert`` / ``slo.alert_cleared``) when one is
    attached.
    """

    def __init__(self, sim: Any, collector: Any, spec: str,
                 scale: Any = None, recorder: Any = None,
                 warmup_until: float = 0.0) -> None:
        self._sim = sim
        self._collector = collector
        self._recorder = recorder
        self.spec = spec
        self.objectives = parse_slo(spec)
        # Alerting starts after the ramp-up, and alert windows never
        # reach back into it: the paper's measurement discipline ignores
        # warmup everywhere, and the first few boot-time completions
        # (a handful of 503s while replicas come up) would otherwise
        # read as a 100% bad fraction and fire every alert at t~0.
        self.warmup_until = warmup_until
        scale = scale if scale is not None else _Identity()
        self.windows = [
            (name, scale.t(long_s), scale.t(short_s), threshold)
            for name, long_s, short_s, threshold in BURN_WINDOWS]
        self.tick_s = min(short for _n, _l, short, _t in self.windows)
        # Latency thresholds stay in raw seconds: WIRTs are not timeline-
        # compressed (same convention as metrics.wirt_compliance).
        self._thresholds_s = [obj.threshold_s for obj in self.objectives]
        # Incremental ingestion state: completion times (monotone) and,
        # per objective, cumulative bad counts aligned with them.
        self._next = 0
        self._times: List[float] = []
        self._bad_cum: List[List[int]] = [[] for _ in self.objectives]
        self.alerts: List[Dict[str, Any]] = []
        self._firing: Dict[Tuple[int, str], bool] = {}
        self._last_eval: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._sim.spawn(self._loop(), name="slo-engine")

    def _loop(self):
        if self.warmup_until > self._sim.now:
            yield self._sim.timeout(self.warmup_until - self._sim.now)
        while True:
            self.evaluate_at(self._sim.now)
            yield self._sim.timeout(self.tick_s)

    # ------------------------------------------------------------------
    def _ingest(self) -> None:
        samples = self._collector.samples
        while self._next < len(samples):
            sent_at, done_at, _interaction, ok, _err = samples[self._next]
            self._times.append(done_at)
            for index, objective in enumerate(self.objectives):
                bad = objective.is_bad(sent_at, done_at, ok,
                                       self._thresholds_s[index])
                cum = self._bad_cum[index]
                cum.append((cum[-1] if cum else 0) + (1 if bad else 0))
            self._next += 1

    def _window_counts(self, index: int, start: float,
                       end: float) -> Tuple[int, int]:
        """(bad, total) for objective ``index`` completing in [start, end]."""
        left = bisect_left(self._times, start)
        if end >= (self._times[-1] if self._times else start):
            right = len(self._times)
        else:
            right = bisect_left(self._times, end, left)
            while right < len(self._times) and self._times[right] <= end:
                right += 1
        total = right - left
        if total <= 0:
            return 0, 0
        cum = self._bad_cum[index]
        bad = cum[right - 1] - (cum[left - 1] if left > 0 else 0)
        return bad, total

    def burn_rate(self, index: int, start: float, end: float) -> float:
        """Bad fraction over [start, end] divided by the budget."""
        bad, total = self._window_counts(index, start, end)
        if total == 0:
            return 0.0
        return (bad / total) / self.objectives[index].budget

    # ------------------------------------------------------------------
    def evaluate_at(self, now: float) -> None:
        """Ingest new samples and fire/clear alerts as of ``now``.

        Called by the engine's own tick loop; also callable directly
        with synthetic collectors in tests (feed samples, step ``now``
        forward, observe exact fire times).
        """
        self._ingest()
        self._last_eval = now
        for index, objective in enumerate(self.objectives):
            for window_name, long_s, short_s, threshold in self.windows:
                burn_long = self.burn_rate(
                    index, max(now - long_s, self.warmup_until), now)
                burn_short = self.burn_rate(
                    index, max(now - short_s, self.warmup_until), now)
                firing = burn_long > threshold and burn_short > threshold
                key = (index, window_name)
                was_firing = self._firing.get(key, False)
                if firing and not was_firing:
                    alert = {
                        "t": now,
                        "objective": objective.name,
                        "window": window_name,
                        "burn_long": round(burn_long, 3),
                        "burn_short": round(burn_short, 3),
                        "threshold": threshold,
                    }
                    self.alerts.append(alert)
                    if self._recorder is not None:
                        self._recorder.record(
                            "slo.alert", None, objective=objective.name,
                            window=window_name,
                            burn_long=alert["burn_long"],
                            burn_short=alert["burn_short"])
                elif was_firing and not firing:
                    if self._recorder is not None:
                        self._recorder.record(
                            "slo.alert_cleared", None,
                            objective=objective.name, window=window_name)
                self._firing[key] = firing

    def finalize(self, now: float) -> None:
        """One last evaluation at run end (skipped if a tick just ran)."""
        if self._last_eval != now:
            self.evaluate_at(now)

    # ------------------------------------------------------------------
    def window_burn(self, start: float, end: float,
                    budget_window: Tuple[float, float]) -> List[Dict[str, Any]]:
        """Per-objective budget spend of [start, end].

        ``budget_window`` (normally the measurement window) defines the
        total error budget -- ``budget * interactions in it`` -- so an
        incident's burn is the fraction of the whole run's budget it
        consumed, comparable across incidents.
        """
        self._ingest()
        out: List[Dict[str, Any]] = []
        for index, objective in enumerate(self.objectives):
            bad, total = self._window_counts(index, start, end)
            _whole_bad, whole_total = self._window_counts(
                index, budget_window[0], budget_window[1])
            allowance = objective.budget * whole_total
            out.append({
                "objective": objective.name,
                "bad": bad,
                "total": total,
                "bad_fraction": round(bad / total, 6) if total else 0.0,
                "budget_burn": round(bad / allowance, 4) if allowance else 0.0,
            })
        return out

    def report(self, measure_start: float,
               measure_end: float) -> Dict[str, Any]:
        """Pass/fail verdict per objective over the measurement window."""
        self._ingest()
        objectives: List[Dict[str, Any]] = []
        for index, objective in enumerate(self.objectives):
            bad, total = self._window_counts(index, measure_start, measure_end)
            bad_fraction = bad / total if total else 0.0
            burn = bad_fraction / objective.budget
            entry = objective.to_dict()
            entry.update({
                "bad": bad,
                "total": total,
                "sli_bad_fraction": round(bad_fraction, 6),
                "budget_burn": round(burn, 4),
                "pass": bad_fraction <= objective.budget,
                "alerts": sum(1 for alert in self.alerts
                              if alert["objective"] == objective.name),
            })
            objectives.append(entry)
        return {
            "spec": self.spec,
            "window": [measure_start, measure_end],
            "objectives": objectives,
            "alerts": list(self.alerts),
            "pass": all(entry["pass"] for entry in objectives),
            "total_budget_burn": round(
                max((entry["budget_burn"] for entry in objectives),
                    default=0.0), 4),
        }
