"""Automated incident post-mortems from flight-recorder evidence.

An *incident* is the causal story of one fault (or a burst of
overlapping faults): the trigger, how long it took the system to
notice, what the failover machinery did about it, what the outage cost
in the paper's performability currency (the WIPS dip area and lost
interactions), how the recovery decomposed into phases, and how much
of the run's error budget it burned.  :func:`build_incident_report`
derives all of that from artifacts an instrumented run already
produced -- the flight-recorder ring (:mod:`repro.obs.recorder`), the
recovery records and span marks (:func:`repro.obs.trace.recovery_phases`
is reused verbatim, so the phase numbers agree exactly with ``repro
trace --recovery-phases``), the interaction stream, and the SLO
engine's alerts and budget accounting (:mod:`repro.obs.slo`).

The report is deterministic: it is pure arithmetic over a
seed-deterministic run, dictionaries are built in sorted/event order,
and dumping with ``json.dumps(report, sort_keys=True)`` is bit-stable
across repeat runs.  :func:`render_markdown` turns the same structure
into the human-facing post-mortem that ``repro postmortem`` prints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs import trace as obs_trace

__all__ = [
    "MissingRecorderError",
    "TRIGGER_KINDS",
    "build_incident_report",
    "render_markdown",
]

#: Faultload kinds that open an incident.  Message/storage nemesis kinds
#: (drop/dup/delay/torn/...) degrade but do not partition the timeline;
#: they show up inside incident timelines, not as triggers.
TRIGGER_KINDS = ("crash", "partition", "dcfail", "wanpart", "retrystorm")

#: Recorder kinds worth replaying in an incident timeline.
_TIMELINE_PREFIXES = (
    "fault.", "proxy.", "paxos.", "watchdog.", "recovery.",
    "checkpoint.", "txn.", "slo.", "server.",
)

#: Timeline length cap per incident (deterministic: earliest kept, the
#: dropped count is reported).
_TIMELINE_CAP = 200

_EPS = 1e-9


class MissingRecorderError(ValueError):
    """A post-mortem was requested on a run without a flight recorder."""


def _geo_placement(recorder) -> Dict[str, str]:
    """node -> datacenter, from the boot-time ``geo.placement`` event."""
    placement: Dict[str, str] = {}
    for event in recorder.select(kind="geo.placement"):
        for name, dc in event.fields:
            placement[name] = dc
    return placement


def _recovery_node(recovery: Dict[str, Any]) -> str:
    shard = recovery.get("shard")
    prefix = f"s{shard}." if shard is not None else ""
    return f"{prefix}replica{recovery['replica']}"


def _slice_recoveries(recoveries: List[Dict[str, Any]], start: float,
                      end: float) -> List[Dict[str, Any]]:
    return [r for r in recoveries if start - _EPS <= r["crashed_at"] < end]


def _provisional_end(trigger, next_start: float,
                     recoveries: List[Dict[str, Any]],
                     heals: List[Any], measure_end: float) -> float:
    """When the system had fully absorbed ``trigger``.

    The latest of: every recovery this trigger caused reaching ready,
    and the fault's own heal event (windowed partitions/dcfails).  An
    unresolved trigger (replica never ready, partition never healed)
    keeps the incident open to the end of the measurement window.
    """
    candidates: List[float] = []
    unresolved = False
    for recovery in _slice_recoveries(recoveries, trigger.time, next_start):
        if recovery.get("ready_at") is None:
            unresolved = True
        else:
            candidates.append(recovery["ready_at"])
    for heal in heals:
        if trigger.time < heal.time < next_start and \
                heal.get("target") == trigger.get("target"):
            candidates.append(heal.time)
    if unresolved or not candidates:
        return measure_end
    return max(candidates)


def _segment_incidents(triggers, recoveries, heals, measure_end):
    """Greedy merge: a fault landing before the previous incident closed
    joins it (overlapping failures are one causal story)."""
    incidents: List[Dict[str, Any]] = []
    for index, trigger in enumerate(triggers):
        next_start = (triggers[index + 1].time
                      if index + 1 < len(triggers) else float("inf"))
        end = _provisional_end(trigger, next_start, recoveries, heals,
                               measure_end)
        if incidents and trigger.time <= incidents[-1]["end"] + _EPS:
            incidents[-1]["triggers"].append(trigger)
            incidents[-1]["end"] = max(incidents[-1]["end"], end)
        else:
            incidents.append({
                "start": trigger.time,
                "end": end,
                "triggers": [trigger],
            })
    return incidents


def _detection(recorder, slo, start: float, end: float,
               recoveries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Lag from injection to each detection signal (None = never seen).

    ``alert_lag_s`` is the ISSUE's headline number -- injection to the
    first SLO burn-rate alert; the watchdog and proxy lags are the
    infrastructure's own (pre-SLO) detectors, and ``lag_s`` is the
    earliest of whatever fired.
    """
    alert_t: Optional[float] = None
    if slo is not None:
        for alert in slo.alerts:
            if start - _EPS <= alert["t"] <= end + _EPS:
                alert_t = alert["t"]
                break
    proxy_t: Optional[float] = None
    downs = recorder.select(kind="proxy.backend_down", start=start - _EPS,
                            end=end)
    if downs:
        proxy_t = downs[0].time
    watchdog_t: Optional[float] = None
    reboots = [r["rebooted_at"] for r in recoveries
               if r.get("rebooted_at") is not None]
    if reboots:
        watchdog_t = min(reboots)
    lags = {
        "slo_alert": alert_t - start if alert_t is not None else None,
        "proxy_backend_down": proxy_t - start if proxy_t is not None else None,
        "watchdog_reboot": (watchdog_t - start
                            if watchdog_t is not None else None),
    }
    observed = [lag for lag in lags.values() if lag is not None]
    return {
        "alert_lag_s": lags["slo_alert"],
        "lag_s": min(observed) if observed else None,
        "signals": lags,
    }


def _timeline(recorder, start: float, end: float) -> Dict[str, Any]:
    events = []
    for event in recorder.select(start=start - _EPS, end=end + _EPS):
        if event.kind.startswith(_TIMELINE_PREFIXES):
            events.append(event.to_dict())
    dropped = max(0, len(events) - _TIMELINE_CAP)
    return {"events": events[:_TIMELINE_CAP], "dropped": dropped}


def _impact(result, start: float, end: float) -> Dict[str, Any]:
    """The paper's performability currency for [start, end].

    For a single-fault run this window *is* the recovery window
    ([first crash, last ready]), so ``awips``/``lost_interactions``
    agree exactly with ``recovery_window()`` and the figure-5 numbers.
    """
    clamped_end = min(end, result.measure_end)
    stats = result.window_between(start, clamped_end)
    baseline = result.failure_free_window()
    duration = max(0.0, clamped_end - start)
    dip_area = (baseline.awips - stats.awips) * duration
    return {
        "window": [start, clamped_end],
        "duration_s": duration,
        "failure_free_awips": round(baseline.awips, 3),
        "awips": round(stats.awips, 3),
        "completed": stats.completed,
        "errors": stats.errors,
        "wips_dip_area": round(dip_area, 3),
        "lost_interactions": max(0, int(round(dip_area))),
    }


def _classify(trigger_dicts: List[Dict[str, Any]]) -> str:
    """One label for what kind of incident this was.

    ``retry_storm`` wins over everything else: a storm that also
    involves crashes is still a storm story (the crashes are casualties,
    not the cause the defenses answer to).
    """
    faults = {t["fault"] for t in trigger_dicts}
    if "retrystorm" in faults:
        return "retry_storm"
    if faults & {"partition", "wanpart"}:
        return "partition"
    if "dcfail" in faults:
        return "dc_outage"
    return "crash_failover"


def _trigger_dict(trigger, placement: Dict[str, str]) -> Dict[str, Any]:
    entry = trigger.to_dict()
    dc = entry.get("dc")
    if dc is None and placement:
        target = str(entry.get("target", ""))
        # crash targets are replica indexes ("1", "0.2"); map through
        # the node name the group gave them.
        shard, _, index = target.rpartition(".")
        node = (f"s{shard}.replica{index}" if shard else f"replica{index}")
        dc = placement.get(node)
        if dc is not None:
            entry["dc"] = dc
    return entry


def _incident_dcs(triggers: List[Dict[str, Any]],
                  recoveries: List[Dict[str, Any]],
                  placement: Dict[str, str]) -> List[str]:
    dcs = set()
    for trigger in triggers:
        if trigger.get("dc"):
            dcs.add(trigger["dc"])
        for peer in trigger.get("peer_dcs") or ():
            dcs.add(peer)
    for recovery in recoveries:
        dc = placement.get(_recovery_node(recovery))
        if dc:
            dcs.add(dc)
    return sorted(dcs)


def build_incident_report(result) -> Dict[str, Any]:
    """The full post-mortem for one run, as a deterministic dict."""
    recorder = getattr(result, "flight", None)
    if recorder is None:
        raise MissingRecorderError(
            "this run has no flight recorder; enable it with "
            "Experiment(...).record() / .slo() or run `repro postmortem`")
    slo = getattr(result, "slo", None)
    placement = _geo_placement(recorder)

    triggers = [event for event in recorder.select(kind="fault.inject")
                if event.get("fault") in TRIGGER_KINDS]
    heals = recorder.select(kind="fault.heal")
    segments = _segment_incidents(triggers, result.recoveries, heals,
                                  result.measure_end)

    incidents: List[Dict[str, Any]] = []
    for number, segment in enumerate(segments, start=1):
        start, end = segment["start"], segment["end"]
        trigger_kinds = {t.get("fault") for t in segment["triggers"]}
        if "retrystorm" in trigger_kinds:
            verdict = result._metastability_or_none()
            if verdict is not None and verdict.verdict == "metastable":
                # The storm outlived its trigger: the heal event did not
                # end the outage, so the incident runs to the end of the
                # measurement window.
                end = max(end, result.measure_end)
        recoveries = _slice_recoveries(result.recoveries, start, end + _EPS)
        phases: Optional[List[Dict[str, Any]]] = None
        if result.spans is not None:
            phases = obs_trace.recovery_phases(result.spans, recoveries)
        trigger_dicts = [_trigger_dict(t, placement)
                         for t in segment["triggers"]]
        budget = None
        if slo is not None:
            budget = slo.window_burn(
                start, min(end, result.measure_end),
                (result.measure_start, result.measure_end))
        classification = _classify(trigger_dicts)
        metastability = None
        if classification == "retry_storm":
            verdict = result._metastability_or_none()
            if verdict is not None:
                metastability = verdict.to_dict()
        incidents.append({
            "id": number,
            "start": start,
            "end": end,
            "duration_s": end - start,
            "classification": classification,
            "triggers": trigger_dicts,
            "dcs": _incident_dcs(trigger_dicts, recoveries, placement),
            "detection": _detection(recorder, slo, start, end, recoveries),
            "timeline": _timeline(recorder, start, end),
            "recoveries": [dict(r) for r in recoveries],
            "recovery_phases": phases,
            "impact": _impact(result, start, end),
            "budget": budget,
            "metastability": metastability,
        })

    report: Dict[str, Any] = {
        "faultload": result.faultload_name,
        "config": {
            "replicas": result.config.replicas,
            "shards": result.config.shards,
            "seed": result.config.seed,
            "offered_wips": result.config.offered_wips,
            "time_div": result.config.scale.time_div,
        },
        "measure_window": [result.measure_start, result.measure_end],
        "faults_injected": result.faults_injected,
        "interventions": result.interventions,
        "incidents": incidents,
        "slo": (slo.report(result.measure_start, result.measure_end)
                if slo is not None else None),
        "safety_violations": (len(result.safety_violations)
                              if result.safety_violations is not None
                              else None),
        "recorder": {
            "recorded": recorder.recorded,
            "evicted": recorder.evicted,
            "capacity": recorder.capacity,
        },
    }
    return report


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------

def _fmt_s(value: Optional[float]) -> str:
    if value is None:
        return "never"
    if value < 1.0:
        return f"{value * 1000.0:.1f} ms"
    return f"{value:.2f} s"


def _render_incident(incident: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    lines.append(f"## Incident {incident['id']}: "
                 f"{', '.join(t['fault'] for t in incident['triggers'])} "
                 f"at t={incident['start']:.2f}s")
    lines.append("")
    lines.append(f"- **Window:** t={incident['start']:.2f}s -> "
                 f"t={incident['end']:.2f}s "
                 f"({_fmt_s(incident['duration_s'])})")
    if incident.get("classification"):
        lines.append(f"- **Classification:** "
                     f"`{incident['classification']}`")
    meta = incident.get("metastability")
    if meta is not None:
        recovered = ("never" if meta["recovered_at"] is None
                     else f"at t={meta['recovered_at']:.2f}s")
        lines.append(f"- **Metastability oracle:** `{meta['verdict']}` -- "
                     f"post-heal goodput "
                     f"{100.0 * meta['post_heal_ratio']:.1f}% of the "
                     f"{meta['baseline_wips']:.1f} WIPS baseline, "
                     f"recovered {recovered}")
    for trigger in incident["triggers"]:
        where = f" target={trigger.get('target')}" \
            if trigger.get("target") not in (None, "") else ""
        dc = f" dc={trigger['dc']}" if trigger.get("dc") else ""
        lines.append(f"- **Trigger:** `{trigger['fault']}` at "
                     f"t={trigger['t']:.2f}s{where}{dc}")
    if incident["dcs"]:
        lines.append(f"- **Datacenters involved:** "
                     f"{', '.join(incident['dcs'])}")
    detection = incident["detection"]
    lines.append(f"- **Detection lag:** {_fmt_s(detection['lag_s'])} "
                 f"(SLO alert: {_fmt_s(detection['alert_lag_s'])}, "
                 f"watchdog: "
                 f"{_fmt_s(detection['signals']['watchdog_reboot'])}, "
                 f"proxy: "
                 f"{_fmt_s(detection['signals']['proxy_backend_down'])})")
    impact = incident["impact"]
    lines.append(f"- **Impact:** AWIPS {impact['failure_free_awips']:.1f} "
                 f"-> {impact['awips']:.1f} over "
                 f"{_fmt_s(impact['duration_s'])}; "
                 f"~{impact['lost_interactions']} interactions lost "
                 f"(dip area {impact['wips_dip_area']:.1f}), "
                 f"{impact['errors']} errors")
    if incident["budget"]:
        spent = ", ".join(
            f"{entry['objective']}: {100.0 * entry['budget_burn']:.1f}%"
            for entry in incident["budget"])
        lines.append(f"- **Error budget burned:** {spent}")
    lines.append("")

    if incident["recovery_phases"]:
        lines.append("### Recovery phases")
        lines.append("")
        lines.append("| node | total | detection | election | checkpoint "
                     "| catchup | replay |")
        lines.append("|---|---|---|---|---|---|---|")
        for phase in incident["recovery_phases"]:
            cells = phase["phases"]
            lines.append(
                f"| {phase['node']} | {_fmt_s(phase['total_s'])} "
                f"| {_fmt_s(cells['detection'])} "
                f"| {_fmt_s(cells['election'])} "
                f"| {_fmt_s(cells['checkpoint'])} "
                f"| {_fmt_s(cells['catchup'])} "
                f"| {_fmt_s(cells['replay'])} |")
        lines.append("")
    elif incident["recoveries"]:
        lines.append("### Recoveries")
        lines.append("")
        for recovery in incident["recoveries"]:
            ready = recovery.get("ready_at")
            took = (_fmt_s(ready - recovery["crashed_at"])
                    if ready is not None else "never recovered")
            lines.append(f"- `{_recovery_node(recovery)}` crashed at "
                         f"t={recovery['crashed_at']:.2f}s, {took}")
        lines.append("")

    timeline = incident["timeline"]
    if timeline["events"]:
        lines.append("### Failover timeline")
        lines.append("")
        for event in timeline["events"]:
            node = f" `{event['node']}`" if event.get("node") else ""
            extras = ", ".join(
                f"{key}={value}" for key, value in sorted(event.items())
                if key not in ("t", "kind", "node", "seq"))
            suffix = f" ({extras})" if extras else ""
            lines.append(f"- t={event['t']:.3f}s **{event['kind']}**"
                         f"{node}{suffix}")
        if timeline["dropped"]:
            lines.append(f"- ... {timeline['dropped']} more events "
                         f"(ring dump has the full record)")
        lines.append("")
    return lines


def render_markdown(report: Dict[str, Any]) -> str:
    """The post-mortem as markdown (what ``repro postmortem`` prints)."""
    config = report["config"]
    lines: List[str] = []
    lines.append(f"# Post-mortem: faultload `{report['faultload']}`")
    lines.append("")
    lines.append(f"- **Cluster:** {config['replicas']} replicas x "
                 f"{config['shards']} shard(s), seed {config['seed']}, "
                 f"{config['offered_wips']:.0f} offered WIPS "
                 f"(time compression {config['time_div']:.0f}x)")
    lines.append(f"- **Faults injected:** {report['faults_injected']} "
                 f"(operator interventions: {report['interventions']})")
    if report["safety_violations"] is not None:
        verdict = ("none" if report["safety_violations"] == 0
                   else f"**{report['safety_violations']}**")
        lines.append(f"- **Safety violations:** {verdict}")
    recorder = report["recorder"]
    lines.append(f"- **Flight recorder:** {recorder['recorded']} events "
                 f"({recorder['evicted']} evicted, "
                 f"capacity {recorder['capacity']})")
    lines.append("")

    slo = report["slo"]
    if slo is not None:
        lines.append(f"## SLO verdict: "
                     f"{'PASS' if slo['pass'] else '**FAIL**'}")
        lines.append("")
        lines.append("| objective | SLI (bad fraction) | budget "
                     "| burn | alerts | verdict |")
        lines.append("|---|---|---|---|---|---|")
        for entry in slo["objectives"]:
            lines.append(
                f"| `{entry['name']}` | {entry['sli_bad_fraction']:.4%} "
                f"| {entry['budget']:.2%} "
                f"| {entry['budget_burn']:.2f}x | {entry['alerts']} "
                f"| {'pass' if entry['pass'] else 'FAIL'} |")
        lines.append("")

    if not report["incidents"]:
        lines.append("No incidents: no crash/partition faults fired "
                     "inside the run.")
        lines.append("")
    for incident in report["incidents"]:
        lines.extend(_render_incident(incident))
    return "\n".join(lines).rstrip() + "\n"
