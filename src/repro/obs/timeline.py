"""Sim-time timelines: the registry sampled into per-run time series.

A :class:`TimelineSampler` is a simulation process that wakes every
``tick_s`` simulated seconds and records every registered instrument
into a :class:`Timeline`:

* counters -> one cumulative series per counter (rates are derived on
  demand via :meth:`Timeline.rate`);
* gauges -> one instantaneous series per gauge;
* histograms -> four flat series, ``<name>.count`` (cumulative) and
  ``<name>.p50`` / ``.p95`` / ``.p99`` (running quantiles).

Everything is plain scalars keyed by series name, so a timeline exports
losslessly to JSON (``to_dict``/``from_dict``) and to a tick-aligned CSV
(``to_csv``) for spreadsheets and plotting scripts.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Tuple

#: series whose samples are cumulative counts (rates can be derived)
KIND_COUNTER = "counter"
#: series whose samples are instantaneous readings
KIND_GAUGE = "gauge"


class Timeline:
    """Named scalar time series collected over one run."""

    def __init__(self, tick_s: float):
        self.tick_s = tick_s
        self._series: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    def record(self, name: str, t: float, value: float,
               kind: str = KIND_GAUGE) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = {"kind": kind, "points": []}
        series["points"].append((t, value))

    def names(self) -> List[str]:
        return sorted(self._series)

    def kind(self, name: str) -> str:
        return self._series[name]["kind"]

    def points(self, name: str) -> List[Tuple[float, float]]:
        """The raw ``(t, value)`` samples of one series."""
        return list(self._series[name]["points"])

    def rate(self, name: str) -> List[Tuple[float, float]]:
        """Per-second rate between consecutive samples of a cumulative
        series; gauges have no meaningful rate and raise ``ValueError``."""
        series = self._series[name]
        if series["kind"] != KIND_COUNTER:
            raise ValueError(f"series {name!r} is a {series['kind']}, "
                             f"only counters have rates")
        points = series["points"]
        rates = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            dt = t1 - t0
            if dt > 0:
                rates.append((t1, (v1 - v0) / dt))
        return rates

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "tick_s": self.tick_s,
            "series": {
                name: {"kind": series["kind"],
                       "points": [[round(t, 6), value]
                                  for t, value in series["points"]]}
                for name, series in sorted(self._series.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Timeline":
        timeline = cls(data["tick_s"])
        for name, series in data["series"].items():
            for t, value in series["points"]:
                timeline.record(name, t, value, kind=series["kind"])
        return timeline

    def to_csv(self) -> str:
        """Tick-aligned CSV: one ``t`` column plus one column per series
        (blank where a series has no sample at that tick)."""
        names = self.names()
        by_time: Dict[float, Dict[str, float]] = {}
        for name in names:
            for t, value in self._series[name]["points"]:
                by_time.setdefault(round(t, 6), {})[name] = value
        out = io.StringIO()
        out.write(",".join(["t"] + names) + "\n")
        for t in sorted(by_time):
            row = by_time[t]
            cells = [f"{t:g}"] + [
                f"{row[name]:g}" if name in row else "" for name in names]
            out.write(",".join(cells) + "\n")
        return out.getvalue()


class TimelineSampler:
    """The sampling process: registry -> timeline, every ``tick_s``."""

    def __init__(self, sim, registry, tick_s: float,
                 timeline: Optional[Timeline] = None):
        self._sim = sim
        self._registry = registry
        self.tick_s = tick_s
        self.timeline = timeline if timeline is not None else Timeline(tick_s)
        self._last_sample_t: Optional[float] = None

    def start(self) -> None:
        self._sim.spawn(self._loop(), name="obs-sampler")

    def _loop(self):
        while True:
            self.sample()
            yield self._sim.timeout(self.tick_s)

    def flush(self) -> None:
        """Record the trailing partial tick at run end.

        The loop only samples on tick boundaries, so a run whose length
        is not a tick multiple used to lose everything after the final
        boundary (the last partial WIPS bucket, final counter values).
        The harness calls this once after ``run_until``; it is a no-op
        when a boundary sample already landed at exactly this instant.
        """
        if self._last_sample_t != self._sim.now:
            self.sample()

    def sample(self) -> None:
        """Record one sample of every instrument at the current time."""
        t = self._sim.now
        self._last_sample_t = t
        timeline = self.timeline
        for name, counter in self._registry.counters().items():
            timeline.record(name, t, counter.value, kind=KIND_COUNTER)
        for name, gauge in self._registry.gauges().items():
            timeline.record(name, t, gauge.read(), kind=KIND_GAUGE)
        for name, histogram in self._registry.histograms().items():
            timeline.record(f"{name}.count", t, histogram.count,
                            kind=KIND_COUNTER)
            for label, value in histogram.percentiles().items():
                timeline.record(f"{name}.{label}", t, value,
                                kind=KIND_GAUGE)
