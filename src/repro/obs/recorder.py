"""Always-on flight recorder: a bounded ring of structured events.

The flight recorder is the black box of a run.  Components append
structured events -- faultload injections, nemesis windows, proxy
reroutes and evictions, Paxos elections and mode switches, watchdog
restarts, checkpoint/scrub milestones, 2PC resolutions, SLO alerts --
into a bounded ring buffer (``collections.deque`` with ``maxlen``), so
even a multi-hour run keeps the *recent* causal history at a fixed
memory cost.  When something goes wrong (an SLO alert or a safety
violation) the buffer is dumped as JSONL and the incident post-mortem
builder (:mod:`repro.obs.incident`) correlates it with recovery
forensics and SLO burn.

The recorder follows the same null-object discipline as
:class:`repro.obs.trace.SpanTracer`: when recording is off there is
**no** recorder attached to the simulator, instrumentation sites hold
``None`` and guard with one attribute test, and runs are bit-for-bit
identical to an unrecorded run (parity-tested).  Recording itself never
schedules simulator events, never consumes randomness, and never
observes anything but ``sim.now`` -- so a recorded run is also
bit-for-bit identical to an unrecorded one.

Usage::

    recorder = FlightRecorder(sim, capacity=65536)
    sim.recorder = recorder            # before components are built

    # at an instrumentation site, captured at construction time:
    self._recorder = recorder_of(node.sim)
    ...
    if self._recorder is not None:
        self._recorder.record("proxy.backend_down", self.name,
                              backend=backend)
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "FlightRecorder",
    "RecorderEvent",
    "recorder_of",
    "DEFAULT_CAPACITY",
]

#: Default ring capacity.  Sized so a tiny-scale crash run fits whole
#: while a paper-scale run still keeps minutes of history.
DEFAULT_CAPACITY = 65536


class RecorderEvent:
    """One structured entry in the flight recorder ring.

    Immutable-by-convention; ``fields`` is a sorted tuple of
    ``(key, value)`` pairs so two events with the same payload compare
    and serialize identically regardless of keyword order at the call
    site.
    """

    __slots__ = ("time", "kind", "node", "fields", "seq")

    def __init__(self, time: float, kind: str, node: Optional[str],
                 fields: Tuple[Tuple[str, Any], ...], seq: int) -> None:
        self.time = time
        self.kind = kind
        self.node = node
        self.fields = fields
        self.seq = seq

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "t": round(self.time, 9),
            "kind": self.kind,
            "seq": self.seq,
        }
        if self.node is not None:
            payload["node"] = self.node
        for name, value in self.fields:
            payload[name] = value
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ", ".join(f"{k}={v!r}" for k, v in self.fields)
        return (f"RecorderEvent(t={self.time:.3f}, kind={self.kind!r}, "
                f"node={self.node!r}{', ' + extra if extra else ''})")


class FlightRecorder:
    """Bounded ring buffer of :class:`RecorderEvent`.

    ``capacity`` bounds memory; once full, the oldest events are
    evicted in FIFO order (``recorded - len(events)`` have been lost,
    exposed as :attr:`evicted`).  ``seq`` numbers are global and
    monotone, so eviction is detectable in a dump (the first retained
    event's ``seq`` exceeds 0 by exactly the evicted count).
    """

    def __init__(self, sim: Any, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.events: "deque[RecorderEvent]" = deque(maxlen=capacity)
        self.recorded = 0

    # ------------------------------------------------------------------
    @property
    def evicted(self) -> int:
        """How many events the ring has dropped (oldest-first)."""
        return self.recorded - len(self.events)

    def record(self, kind: str, node: Optional[str] = None,
               **fields: Any) -> RecorderEvent:
        """Append one event stamped at ``sim.now``."""
        event = RecorderEvent(
            self._sim.now, kind, node,
            tuple(sorted(fields.items())), self.recorded)
        self.recorded += 1
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def select(self, kind: Optional[str] = None,
               prefix: Optional[str] = None,
               start: Optional[float] = None,
               end: Optional[float] = None) -> List[RecorderEvent]:
        """Events filtered by exact kind, kind prefix, and time window."""
        out: List[RecorderEvent] = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if prefix is not None and not event.kind.startswith(prefix):
                continue
            if start is not None and event.time < start:
                continue
            if end is not None and event.time > end:
                continue
            out.append(event)
        return out

    def counts(self) -> Dict[str, int]:
        """Retained event count per kind (for tests and summaries)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        for event in self.events:
            yield event.to_dict()

    def to_jsonl(self) -> str:
        """The retained ring as JSONL, oldest first, deterministic."""
        return "\n".join(
            json.dumps(payload, sort_keys=True)
            for payload in self.iter_dicts())

    def dump(self, path: str) -> int:
        """Write the ring as JSONL to ``path``; returns events written."""
        lines = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            if lines:
                handle.write(lines + "\n")
        return len(self.events)


def recorder_of(sim: Any) -> Optional[FlightRecorder]:
    """The simulator's flight recorder, or ``None`` when recording is off.

    Mirrors :func:`repro.obs.trace.spans_of`: instrumentation sites
    capture the result once at construction time and guard each record
    with ``if self._recorder is not None`` so an unrecorded run pays a
    single attribute test per site, not per event.
    """
    return getattr(sim, "recorder", None)
