"""Causal span tracing: per-interaction spans across every layer.

A *trace* is one TPC-W interaction.  The RBE stamps its request with a
trace id and opens a root ``interaction`` span; the id rides inside the
``Request`` payload through proxy and server, is picked up by the
replica's request process (``sim._current``), and so reaches the
treplica ``execute`` path and the 2PC coordinator without any component
threading an explicit context argument.  Every network message hop,
disk operation, proxy/CPU queueing episode, and state-machine apply
batch records a :class:`Span` with sim-time start/end, the node it ran
on, and a kind; point-in-time milestones (a leader election, a replica
catching up) are :class:`Mark` instants.

The tracer follows the ``repro.obs`` null-object discipline: components
capture ``sim.spans`` (``None`` unless the harness attached a
:class:`SpanTracer`) and guard each emission with a single ``is not
None`` check.  Recording is synchronous list appends -- no simulator
events, no RNG draws -- so a traced run is bit-for-bit identical to an
untraced run at the same seed (``tests/obs/test_trace.py`` locks this).

On top of the raw spans sit two analyzers:

* :func:`critical_path` -- decomposes each interaction's measured WIRT
  into queueing / network / disk / quorum / apply buckets that sum to
  the response time exactly (a priority sweep over the root span's
  timeline; uncovered time is "other").
* :func:`recovery_phases` -- splits each recovery window into the
  paper's detection -> election -> checkpoint -> catch-up -> replay
  phases using recovery milestones (marks), clamped so the phases
  partition ``[crashed_at, ready_at]`` exactly.

Exports are JSONL (one span or mark per line) and Chrome trace-event
JSON (``ph: "X"`` complete events on one thread per node), loadable in
Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import bisect
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "BUCKETS",
    "CriticalPathReport",
    "InjectionPoint",
    "Mark",
    "RECOVERY_PHASES",
    "Span",
    "SpanTracer",
    "critical_path",
    "current_trace",
    "injection_points",
    "recovery_phases",
    "spans_of",
]


# ----------------------------------------------------------------------
# span records
# ----------------------------------------------------------------------
@dataclass
class Span:
    """One timed episode on one node, optionally tied to a trace id."""

    span_id: int
    kind: str
    node: str
    start: float
    trace: Optional[str] = None
    end: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class Mark:
    """A point-in-time milestone (election won, replica caught up)."""

    time: float
    name: str
    node: str
    fields: Tuple[Tuple[str, Any], ...] = ()


def spans_of(sim) -> Optional["SpanTracer"]:
    """The simulator's span tracer, or ``None`` when tracing is off."""
    return getattr(sim, "spans", None)


def current_trace(sim) -> Optional[str]:
    """Trace id of the currently resuming process, if it carries one.

    The kernel tracks the process being resumed in ``sim._current``;
    the web server stamps each request-handling process with the
    request's trace id, so anything running under it (servlets, the
    database, ``TreplicaRuntime.execute``, the 2PC coordinator) can
    recover the causal context without plumbing arguments.
    """
    process = getattr(sim, "_current", None)
    if process is None:
        return None
    return getattr(process, "trace", None)


class SpanTracer:
    """Collects :class:`Span` and :class:`Mark` records for one run.

    Attached by the harness as ``sim.spans`` *before* any component is
    built, mirroring how ``sim.metrics`` is installed.  All methods are
    plain list appends against ``sim.now``; none schedules events or
    draws randomness, which is what keeps traced and untraced runs
    bit-for-bit identical.
    """

    def __init__(self, sim, max_spans: int = 2_000_000):
        self.sim = sim
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.marks: List[Mark] = []
        self.dropped = 0
        self._next_id = 0

    # -- recording -----------------------------------------------------
    def begin(self, kind: str, node: str, trace: Optional[str] = None,
              **fields: Any) -> Span:
        """Open a span at ``sim.now``; close it later with :meth:`finish`."""
        span = Span(self._next_id, kind, node, self.sim.now,
                    trace=trace, fields=fields)
        self._next_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def finish(self, span: Span, **fields: Any) -> Span:
        """Close ``span`` at ``sim.now`` (idempotent: first close wins)."""
        if span.end is None:
            span.end = self.sim.now
            if fields:
                span.fields.update(fields)
        return span

    def complete(self, kind: str, node: str, start: float,
                 trace: Optional[str] = None, **fields: Any) -> Span:
        """Record a span that ran from ``start`` until ``sim.now``."""
        span = self.begin(kind, node, trace=trace, **fields)
        span.start = start
        span.end = self.sim.now
        return span

    def instant(self, kind: str, node: str, trace: Optional[str] = None,
                **fields: Any) -> Span:
        """A zero-length span (e.g. a message eaten by the nemesis)."""
        span = self.begin(kind, node, trace=trace, **fields)
        span.end = span.start
        return span

    def mark(self, name: str, node: str, **fields: Any) -> Mark:
        """Record a point-in-time milestone at ``sim.now``."""
        mark = Mark(self.sim.now, name, node, tuple(sorted(fields.items())))
        self.marks.append(mark)
        return mark

    # -- queries -------------------------------------------------------
    def select(self, kind: Optional[str] = None,
               trace: Optional[str] = None,
               node_prefix: Optional[str] = None) -> List[Span]:
        """Finished spans filtered by kind / trace id / node prefix.

        ``node_prefix="s1."`` narrows a sharded run to one replica
        group's stream.
        """
        out = []
        for span in self.spans:
            if span.end is None:
                continue
            if kind is not None and span.kind != kind:
                continue
            if trace is not None and span.trace != trace:
                continue
            if node_prefix is not None \
                    and not span.node.startswith(node_prefix):
                continue
            out.append(span)
        return out

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.kind] = out.get(span.kind, 0) + 1
        return out

    # -- exports -------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line: spans (finished only) then marks."""
        lines = []
        for span in self.spans:
            if span.end is None:
                continue
            lines.append(json.dumps({
                "type": "span", "id": span.span_id, "kind": span.kind,
                "node": span.node, "trace": span.trace,
                "start": span.start, "end": span.end,
                "fields": _jsonable(span.fields),
            }, sort_keys=True))
        for mark in self.marks:
            lines.append(json.dumps({
                "type": "mark", "name": mark.name, "node": mark.node,
                "time": mark.time, "fields": _jsonable(dict(mark.fields)),
            }, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome trace-event JSON: one pid, one tid per node.

        Complete (``ph: "X"``) events carry the span kind as the event
        name and the trace id in ``args``; marks become thread-scoped
        instants.  Timestamps are microseconds of sim time, so the
        Perfetto ruler reads directly in simulated wall clock.
        """
        events: List[Dict[str, Any]] = []
        tids: Dict[str, int] = {}

        def tid_of(node: str) -> int:
            tid = tids.get(node)
            if tid is None:
                tid = tids[node] = len(tids) + 1
                events.append({"ph": "M", "pid": 1, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": node}})
            return tid

        for span in self.spans:
            if span.end is None:
                continue
            args = _jsonable(span.fields)
            if span.trace is not None:
                args["trace"] = span.trace
            events.append({
                "ph": "X", "pid": 1, "tid": tid_of(span.node),
                "name": span.kind, "cat": span.kind.split(".")[0],
                "ts": round(span.start * 1e6, 3),
                "dur": round((span.end - span.start) * 1e6, 3),
                "args": args,
            })
        for mark in self.marks:
            events.append({
                "ph": "i", "s": "t", "pid": 1, "tid": tid_of(mark.node),
                "name": mark.name, "cat": "mark",
                "ts": round(mark.time * 1e6, 3),
                "args": _jsonable(dict(mark.fields)),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(fields: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in fields.items():
        if isinstance(value, tuple):
            value = list(value)
        elif not isinstance(value, (str, int, float, bool, list,
                                    dict, type(None))):
            value = str(value)
        out[key] = value
    return out


# ----------------------------------------------------------------------
# analyzer 1: WIRT critical-path decomposition
# ----------------------------------------------------------------------
#: Decomposition buckets, in report order.
BUCKETS = ("queueing", "network", "disk", "quorum", "apply", "other")

#: bucket and preemption priority for spans that carry the trace id.
#: Higher priority wins where segments overlap (disk under an execute
#: window beats the execute span itself, which beats the network hop
#: that happened to overlap).
_TRACE_BUCKETS = {
    "net": ("network", 1),
    "proxy.queue": ("queueing", 2),
    "server.cpu": ("queueing", 2),
    "execute": ("quorum", 3),
    "txn.prepare": ("quorum", 3),
}
_APPLY_PRIORITY = 4
_DISK_PRIORITY = 5


class _NodeIndex:
    """Interval index over one node's spans: sorted starts + prefix-max
    ends, so ``overlapping(a, b)`` is exact without scanning everything."""

    def __init__(self, spans: List[Span]):
        spans.sort(key=lambda s: (s.start, s.span_id))
        self.spans = spans
        self.starts = [s.start for s in spans]
        self.max_end: List[float] = []
        running = -math.inf
        for span in spans:
            running = max(running, span.end)
            self.max_end.append(running)

    def overlapping(self, a: float, b: float) -> List[Span]:
        hi = bisect.bisect_left(self.starts, b)
        lo, r = 0, hi
        while lo < r:  # leftmost index whose prefix-max end exceeds a
            mid = (lo + r) // 2
            if self.max_end[mid] > a:
                r = mid
            else:
                lo = mid + 1
        return [s for s in self.spans[lo:hi] if s.end > a]


@dataclass
class CriticalPathReport:
    """Per-interaction WIRT decompositions plus aggregate views."""

    interactions: List[Dict[str, Any]]

    def totals(self) -> Dict[str, float]:
        """Summed seconds per bucket across all interactions."""
        totals = {bucket: 0.0 for bucket in BUCKETS}
        for entry in self.interactions:
            for bucket, seconds in entry["buckets"].items():
                totals[bucket] += seconds
        return totals

    def network_split_totals(self) -> Dict[str, float]:
        """Summed intra-DC vs WAN seconds inside the network bucket.

        On non-geo runs every hop is intra-DC, so ``wan`` is 0.0 and
        ``intra`` equals the network total.
        """
        totals = {"intra": 0.0, "wan": 0.0}
        for entry in self.interactions:
            totals["intra"] += entry["network_split"]["intra"]
            totals["wan"] += entry["network_split"]["wan"]
        return totals

    def bucket_quantiles(
            self, qs: Iterable[float] = (0.5, 0.9, 0.99),
    ) -> Dict[str, Dict[str, float]]:
        """Per-bucket quantiles/mean/share over per-interaction seconds."""
        wirt_total = sum(e["wirt_s"] for e in self.interactions) or 1.0
        out: Dict[str, Dict[str, float]] = {}
        for bucket in BUCKETS:
            values = sorted(e["buckets"][bucket] for e in self.interactions)
            row: Dict[str, float] = {}
            for q in qs:
                row[f"p{int(round(q * 100))}"] = _percentile(values, q)
            row["mean"] = (sum(values) / len(values)) if values else 0.0
            row["share_pct"] = 100.0 * sum(values) / wirt_total
            out[bucket] = row
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"interactions": self.interactions,
                "totals": self.totals(),
                "network_split": self.network_split_totals(),
                "quantiles": self.bucket_quantiles()}


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def critical_path(tracer: SpanTracer,
                  include_failed: bool = False) -> CriticalPathReport:
    """Attribute each interaction's response time to latency buckets.

    For every root ``interaction`` span the decomposer collects the
    trace's own spans (hops, queueing, execute/2PC waits), plus the
    node-level ``disk`` and ``apply`` spans that overlap the trace's
    ``execute`` windows on the executing replica, clips everything to
    the root window, and sweeps the timeline: each elementary interval
    is charged to the highest-priority covering segment, uncovered time
    to "other".  The buckets therefore partition ``[start, end]`` and
    sum to the measured WIRT exactly.
    """
    by_trace: Dict[str, List[Span]] = {}
    disk_by_node: Dict[str, List[Span]] = {}
    apply_by_node: Dict[str, List[Span]] = {}
    roots: List[Span] = []
    for span in tracer.spans:
        if span.end is None:
            continue
        if span.kind == "disk":
            disk_by_node.setdefault(span.node, []).append(span)
        elif span.kind == "apply":
            apply_by_node.setdefault(span.node, []).append(span)
        elif span.kind == "interaction":
            roots.append(span)
        elif span.trace is not None:
            by_trace.setdefault(span.trace, []).append(span)
    disk_index = {node: _NodeIndex(spans)
                  for node, spans in disk_by_node.items()}
    apply_index = {node: _NodeIndex(spans)
                   for node, spans in apply_by_node.items()}

    interactions = []
    for root in roots:
        if not include_failed and not root.fields.get("ok", True):
            continue
        t0, t1 = root.start, root.end
        if t1 <= t0:
            continue
        segments: List[Tuple[float, float, str, int]] = []
        for span in by_trace.get(root.trace, ()):
            mapped = _TRACE_BUCKETS.get(span.kind)
            if mapped is None:
                continue
            a, b = max(span.start, t0), min(span.end, t1)
            if b <= a:
                continue
            bucket, priority = mapped
            if span.kind == "net":
                # Geo runs tag cross-datacenter hops (repro.geo); the
                # sweep folds both sub-buckets back into "network" so
                # the split is a refinement, not a new bucket.
                bucket = ("network#wan" if span.fields.get("wan")
                          else "network#intra")
            segments.append((a, b, bucket, priority))
            if span.kind != "execute":
                continue
            # Disk syncs and apply batches are node-level (they serve
            # many commands at once); charge the slices that overlap
            # this trace's quorum-wait window on the executing replica.
            disk = disk_index.get(f"{span.node}-disk")
            if disk is not None:
                for other in disk.overlapping(a, b):
                    c, d = max(other.start, a), min(other.end, b)
                    if d > c:
                        segments.append((c, d, "disk", _DISK_PRIORITY))
            batches = apply_index.get(span.node)
            if batches is not None:
                for other in batches.overlapping(a, b):
                    c, d = max(other.start, a), min(other.end, b)
                    if d > c:
                        segments.append((c, d, "apply", _APPLY_PRIORITY))
        buckets, network_split = _sweep(t0, t1, segments)
        interactions.append({
            "trace": root.trace,
            "interaction": root.fields.get("interaction"),
            "client": root.node,
            "start": t0,
            "wirt_s": t1 - t0,
            "ok": bool(root.fields.get("ok", True)),
            "buckets": buckets,
            "network_split": network_split,
        })
    return CriticalPathReport(interactions)


def _sweep(t0: float, t1: float,
           segments: List[Tuple[float, float, str, int]],
           ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Charge each elementary interval of ``[t0, t1]`` to the
    highest-priority covering segment; leftovers go to "other".

    Network time is accumulated per sub-bucket (``network#intra`` /
    ``network#wan``, see :func:`critical_path`) and the "network"
    bucket is *defined* as their sum, so the returned split components
    always add up to the network bucket exactly -- bit-for-bit, not
    just within float tolerance.
    """
    buckets = {bucket: 0.0 for bucket in BUCKETS}
    split = {"intra": 0.0, "wan": 0.0}
    cuts = {t0, t1}
    for a, b, _bucket, _priority in segments:
        cuts.add(a)
        cuts.add(b)
    points = sorted(cuts)
    for left, right in zip(points, points[1:]):
        if right <= left:
            continue
        midpoint = (left + right) / 2.0
        best, best_priority = "other", 0
        for a, b, bucket, priority in segments:
            if priority > best_priority and a <= midpoint < b:
                best, best_priority = bucket, priority
        if best == "network#intra":
            split["intra"] += right - left
        elif best == "network#wan":
            split["wan"] += right - left
        else:
            buckets[best] += right - left
    buckets["network"] = split["intra"] + split["wan"]
    return buckets, split


# ----------------------------------------------------------------------
# analyzer 3: fault-injection-point extraction (repro.faults.explore)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InjectionPoint:
    """One candidate fault derived from a golden run's 2PC hop graph.

    ``signature`` is the dynamic-equivalence key
    ``(interaction, stage, role)``: two concrete points with the same
    signature perturb the same protocol step of the same interaction
    class (on possibly different transactions/replicas), so the
    explorer executes only the earliest of them.  Times are **sim
    seconds** of the golden run; the explorer converts them to
    paper-timeline faultload specs (multiply by ``scale.time_div``).
    """

    signature: Tuple[str, str, str]
    kind: str                  # "crash" | "drop"
    at: float                  # sim-time
    node: str                  # crash: the victim; drop: "src->dst"
    until: Optional[float] = None   # drop window end (sim-time)
    trace: Optional[str] = None
    tx: Optional[str] = None

    @property
    def stage(self) -> str:
        return self.signature[1]


#: Crash offset: far enough from the span edge to dodge the float
#: rounding of the paper-seconds round trip (spec times keep 4
#: decimals; at time_div=20 that is 5e-6 sim-s of slack), close enough
#: that no other protocol step fits in between.
_INJECT_EPS = 1e-4
#: Half-width of a drop window around one message's send instant.  The
#: nemesis rolls dice at *send* time, so the window only has to cover
#: that instant; 5 ms stays far under the 2PC retry timeout (1 s), so a
#: window can never eat the retry it is supposed to provoke.
_DROP_HALF_S = 0.005


def injection_points(tracer: SpanTracer,
                     interactions: Optional[Iterable[str]] = None,
                     cutoff: Optional[float] = None) -> List[InjectionPoint]:
    """Enumerate candidate faults from a traced run's 2PC spans.

    Walks every coordinator ``txn.prepare`` span (with its participant
    and decide spans, joined on the tx id) and emits, per transaction:

    * **coordinator crashes** around every protocol step --
      ``prepare.send`` (first prepare in flight), ``prepare.wait``
      (mid-vote-collection), ``prepare.done`` (all votes in, nothing
      decided -- the classic orphan window), ``commit.order`` (the home
      commit record is being ordered), ``decide.after`` (decision
      broadcast just sent);
    * **participant crashes** around each foreign prepare --
      ``participant.recv`` (ordering the TxPrepare) and
      ``participant.voted`` (vote sent, decision pending);
    * **message drops** on each directed 2PC hop -- ``drop.prepare``,
      ``drop.vote``, ``drop.decision`` -- as probability-1 nemesis
      windows around the send instant of one concrete message.

    Every concrete occurrence is returned (sorted by time, then
    signature); the explorer dedupes by signature.  ``interactions``
    restricts to those interaction classes; ``cutoff`` (sim-time) drops
    points too late in the run to observe recovery afterwards.
    """
    interaction_of: Dict[str, str] = {}
    for root in tracer.select(kind="interaction"):
        if root.trace is not None:
            interaction_of[root.trace] = root.fields.get("interaction")
    participants_by_tx: Dict[str, List[Span]] = {}
    for span in tracer.select(kind="txn.participant"):
        participants_by_tx.setdefault(span.fields["tx"], []).append(span)
    decide_by_tx: Dict[str, Span] = {}
    for span in tracer.select(kind="txn.decide"):
        decide_by_tx.setdefault(span.fields["tx"], span)
    wanted = None if interactions is None else set(interactions)

    points: List[InjectionPoint] = []

    def add(iclass: str, stage: str, role: str, kind: str, at: float,
            node: str, until: Optional[float], trace, tx) -> None:
        if cutoff is not None and at > cutoff:
            return
        points.append(InjectionPoint(
            signature=(iclass, stage, role), kind=kind, at=at, node=node,
            until=until, trace=trace, tx=tx))

    for prep in tracer.select(kind="txn.prepare"):
        iclass = interaction_of.get(prep.trace)
        if iclass is None or (wanted is not None and iclass not in wanted):
            continue
        tx = prep.fields["tx"]
        trace = prep.trace
        coord = prep.node

        def crash(stage: str, role: str, at: float, node: str) -> None:
            add(iclass, stage, role, "crash", at, node, None, trace, tx)

        def drop(stage: str, role: str, send_at: float, pair: str) -> None:
            add(iclass, stage, role, "drop", send_at - _DROP_HALF_S,
                pair, send_at + _DROP_HALF_S, trace, tx)

        crash("prepare.send", "coordinator", prep.start + _INJECT_EPS, coord)
        crash("prepare.wait", "coordinator",
              (prep.start + prep.end) / 2.0, coord)
        crash("prepare.done", "coordinator", prep.end + _INJECT_EPS, coord)
        decide = decide_by_tx.get(tx)
        if decide is not None:
            if decide.start - _INJECT_EPS > prep.end:
                # While the home group orders the commit record.
                crash("commit.order", "coordinator",
                      (prep.end + decide.start) / 2.0, coord)
            crash("decide.after", "coordinator",
                  decide.start + _INJECT_EPS, coord)
        for part in sorted(participants_by_tx.get(tx, ()),
                           key=lambda s: (s.start, s.span_id)):
            crash("participant.recv", "participant",
                  part.start + _INJECT_EPS, part.node)
            crash("participant.voted", "participant",
                  part.end + _INJECT_EPS, part.node)
            # The prepare's send instant: arrival minus the network
            # latency -- covered generously by the window half-width.
            drop("drop.prepare", "coordinator>participant",
                 part.start, f"{coord}->{part.node}")
            drop("drop.vote", "participant>coordinator",
                 part.end, f"{part.node}->{coord}")
            if decide is not None:
                drop("drop.decision", "coordinator>participant",
                     decide.start, f"{coord}->{part.node}")
    points.sort(key=lambda p: (p.at, p.signature, p.node))
    return points


# ----------------------------------------------------------------------
# analyzer 2: recovery-phase forensics
# ----------------------------------------------------------------------
#: Phase names, in chronological order.
RECOVERY_PHASES = ("detection", "election", "checkpoint", "catchup",
                   "replay")


def recovery_phases(tracer: SpanTracer,
                    recoveries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Split each recovery window into the paper's phases.

    Milestones inside ``[crashed_at, ready_at]``:

    * ``rebooted_at`` (from the recovery record) ends **detection** --
      the watchdog noticing the crash and restarting the process;
    * the last ``paxos.elected`` mark in the replica's group ends
      **election**;
    * the replica's ``recovery.checkpoint_loaded`` /
      ``recovery.checkpoint_transferred`` mark ends **checkpoint**
      (local restore or remote state transfer);
    * the replica's ``recovery.caught_up`` mark (applied watermark
      reached the target observed at boot) ends **catchup**;
    * everything after, until ``ready_at``, is **replay** -- draining
      the residual decided-but-unapplied tail and the caught-up poll.

    Each milestone is clamped to be monotone and inside the window, and
    a missing milestone collapses its phase to zero, so the five phases
    always partition ``[crashed_at, ready_at]`` exactly.

    Storage-fault recoveries additionally report ``repair_s``: the span
    from the replica's ``recovery.scrub_started`` mark (damaged durable
    state detected) to its last ``recovery.repaired_from_peer`` mark
    (replacement state installed), 0.0 when no repair happened.  Repair
    overlaps the phases above (it *is* mostly checkpoint/catchup work),
    so it is an attribution, not a sixth partition slice.
    """
    reports = []
    for event in recoveries:
        ready = event.get("ready_at")
        if ready is None:
            continue  # never came back inside the run
        crashed = event["crashed_at"]
        rebooted = event["rebooted_at"]
        shard = event.get("shard")
        prefix = f"s{shard}." if shard is not None else ""
        node = f"{prefix}replica{event['replica']}"

        def clamp(candidate: float, floor: float) -> float:
            return min(max(candidate, floor), ready)

        detection_end = clamp(rebooted, crashed)
        elected = [m.time for m in tracer.marks
                   if m.name == "paxos.elected"
                   and m.node.startswith(prefix)
                   and crashed < m.time <= ready]
        election_end = clamp(max(elected), detection_end) if elected \
            else detection_end
        loaded = [m.time for m in tracer.marks
                  if m.name in ("recovery.checkpoint_loaded",
                                "recovery.checkpoint_transferred")
                  and m.node == node and crashed < m.time <= ready]
        checkpoint_end = clamp(min(loaded), election_end) if loaded \
            else election_end
        caught = [m.time for m in tracer.marks
                  if m.name == "recovery.caught_up"
                  and m.node == node and crashed < m.time <= ready]
        catchup_end = clamp(min(caught), checkpoint_end) if caught \
            else checkpoint_end
        scrubbed = [m.time for m in tracer.marks
                    if m.name == "recovery.scrub_started"
                    and m.node == node and crashed < m.time <= ready]
        repaired = [m.time for m in tracer.marks
                    if m.name == "recovery.repaired_from_peer"
                    and m.node == node and crashed < m.time <= ready]
        repair_s = (max(repaired) - min(scrubbed)) \
            if scrubbed and repaired else 0.0

        reports.append({
            "replica": event["replica"],
            "shard": shard,
            "node": node,
            "crashed_at": crashed,
            "rebooted_at": rebooted,
            "ready_at": ready,
            "total_s": ready - crashed,
            "repair_s": repair_s,
            "phases": {
                "detection": detection_end - crashed,
                "election": election_end - detection_end,
                "checkpoint": checkpoint_end - election_end,
                "catchup": catchup_end - checkpoint_end,
                "replay": ready - catchup_end,
            },
        })
    return reports
