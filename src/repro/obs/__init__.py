"""Observability: metrics registry, sim-time timelines, kernel profiling.

The paper's contribution is *measurement* -- WIPS/WIRT curves and
dependability metrics read off a running cluster -- so the repro carries
a first-class observability layer:

* :mod:`repro.obs.registry` -- :class:`MetricsRegistry` with counters,
  gauges, and streaming (bucketed) histograms; instrumentation sites use
  :func:`registry_of` and degrade to shared no-ops when no registry is
  attached to the simulator;
* :mod:`repro.obs.timeline` -- :class:`TimelineSampler` samples every
  instrument on sim-time ticks into a :class:`Timeline` (JSON/CSV
  export, derived rates);
* :mod:`repro.obs.profiler` -- :class:`KernelProfiler` attributes the
  event kernel's wall-clock to layers (events per simulated second,
  wall-clock per event category);
* :mod:`repro.obs.trace` -- :class:`SpanTracer` records causal spans per
  TPC-W interaction across every layer (hops, queueing, disk, quorum
  wait, apply), with a WIRT critical-path decomposer, recovery-phase
  forensics, and JSONL / Chrome trace-event exports;
* :mod:`repro.obs.recorder` -- :class:`FlightRecorder`, a bounded ring
  of structured events (fault injections, failovers, elections,
  recovery milestones, SLO alerts) with JSONL dump -- the run's black
  box;
* :mod:`repro.obs.slo` -- declarative SLOs (``wirt_p99<2s``,
  ``error_rate<1%``) judged in sim time with Google-SRE multi-window
  burn-rate alerts;
* :mod:`repro.obs.incident` -- the post-mortem builder correlating
  recorder events, recovery forensics, and SLO burn into per-incident
  reports (``repro postmortem``).

Enable the whole stack on a run with ``ClusterConfig(observability=True)``
or ``Experiment(...).observe()``; from the CLI, ``repro run --obs``.
Span tracing is separate (``span_tracing=True`` / ``.trace()`` /
``repro trace``) because it records per-event data rather than
aggregates; the flight recorder and SLO engine follow the same opt-in
(``.record()`` / ``.slo()`` / ``--slo``).
"""

from repro.obs.incident import (
    MissingRecorderError,
    build_incident_report,
    render_markdown,
)
from repro.obs.profiler import KernelProfiler, category_of_module
from repro.obs.recorder import FlightRecorder, RecorderEvent, recorder_of
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    StreamingHistogram,
    registry_of,
    to_prometheus,
)
from repro.obs.slo import Objective, SloEngine, SloError, parse_slo
from repro.obs.timeline import Timeline, TimelineSampler
from repro.obs.trace import (
    CriticalPathReport,
    InjectionPoint,
    Mark,
    Span,
    SpanTracer,
    critical_path,
    current_trace,
    injection_points,
    recovery_phases,
    spans_of,
)

__all__ = [
    "NULL_REGISTRY",
    "Counter",
    "CriticalPathReport",
    "FlightRecorder",
    "Gauge",
    "InjectionPoint",
    "KernelProfiler",
    "Mark",
    "MetricsRegistry",
    "MissingRecorderError",
    "NullRegistry",
    "Objective",
    "RecorderEvent",
    "SloEngine",
    "SloError",
    "Span",
    "SpanTracer",
    "StreamingHistogram",
    "Timeline",
    "TimelineSampler",
    "build_incident_report",
    "category_of_module",
    "critical_path",
    "current_trace",
    "injection_points",
    "parse_slo",
    "recorder_of",
    "recovery_phases",
    "registry_of",
    "render_markdown",
    "spans_of",
    "to_prometheus",
]
