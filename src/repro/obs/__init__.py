"""Observability: metrics registry, sim-time timelines, kernel profiling.

The paper's contribution is *measurement* -- WIPS/WIRT curves and
dependability metrics read off a running cluster -- so the repro carries
a first-class observability layer:

* :mod:`repro.obs.registry` -- :class:`MetricsRegistry` with counters,
  gauges, and streaming (bucketed) histograms; instrumentation sites use
  :func:`registry_of` and degrade to shared no-ops when no registry is
  attached to the simulator;
* :mod:`repro.obs.timeline` -- :class:`TimelineSampler` samples every
  instrument on sim-time ticks into a :class:`Timeline` (JSON/CSV
  export, derived rates);
* :mod:`repro.obs.profiler` -- :class:`KernelProfiler` attributes the
  event kernel's wall-clock to layers (events per simulated second,
  wall-clock per event category).

Enable the whole stack on a run with ``ClusterConfig(observability=True)``
or ``Experiment(...).observe()``; from the CLI, ``repro run --obs``.
"""

from repro.obs.profiler import KernelProfiler, category_of_module
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    StreamingHistogram,
    registry_of,
)
from repro.obs.timeline import Timeline, TimelineSampler

__all__ = [
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "KernelProfiler",
    "MetricsRegistry",
    "NullRegistry",
    "StreamingHistogram",
    "Timeline",
    "TimelineSampler",
    "category_of_module",
    "registry_of",
]
