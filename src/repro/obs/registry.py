"""The metrics registry: counters, gauges, and streaming histograms.

Instrumentation sites never test "is observability on?".  They ask
:func:`registry_of` for the simulator's registry and get either the real
:class:`MetricsRegistry` (attached by the harness as ``sim.metrics``) or
the module-level :data:`NULL_REGISTRY`, whose instruments are shared
no-op singletons.  A disabled hot path therefore costs one attribute
access and one empty method call -- cheap enough to leave compiled in
everywhere, mirroring how ``repro.sim.trace.emit`` degrades to a no-op
without a tracer.

Instruments are get-or-create by name, so components recreated on a
reboot (a new ``TreplicaRuntime``, a new ``PaxosEngine``) keep
accumulating into the same cluster-wide series instead of resetting it.

The histogram is *streaming*: it keeps exponential buckets plus exact
count/sum/min/max, so p50/p95/p99 come out with a bounded relative error
(the bucket growth factor) without storing any samples.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional


class Counter:
    """A monotonically increasing count (events, messages, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time reading pulled from a callable at sample time.

    The callable is re-bindable (:meth:`bind`) because the object it
    reads may be recreated on a node reboot.  A reading that raises --
    e.g. the component is mid-crash -- comes back as 0.0 rather than
    killing the sampler.
    """

    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._fn = fn

    def bind(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    def read(self) -> float:
        if self._fn is None:
            return 0.0
        try:
            return float(self._fn())
        except Exception:  # noqa: BLE001 - the component may be dead
            return 0.0

    def __repr__(self) -> str:
        return f"<Gauge {self.name}>"


class StreamingHistogram:
    """Quantile sketch over exponential buckets.

    Bucket ``k`` (k >= 1) covers ``(lo * growth**(k-1), lo * growth**k]``;
    bucket 0 absorbs everything at or below ``lo``.  A quantile is the
    geometric midpoint of the bucket holding its rank, clamped to the
    exact observed min/max, so the relative error is at most
    ``sqrt(growth) - 1`` (about 9% at the default growth of 2**0.25).
    """

    __slots__ = ("name", "lo", "growth", "count", "total", "min", "max",
                 "_counts", "_inv_log_g", "_nbuckets",
                 "_memo_lo", "_memo_hi", "_memo_index")

    def __init__(self, name: str, lo: float = 1e-6, hi: float = 1e7,
                 growth: float = 2.0 ** 0.25):
        if lo <= 0 or hi <= lo or growth <= 1.0:
            raise ValueError(f"bad histogram bounds: lo={lo} hi={hi} "
                             f"growth={growth}")
        self.name = name
        self.lo = lo
        self.growth = growth
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._inv_log_g = 1.0 / math.log(growth)
        self._nbuckets = 2 + int(math.ceil(math.log(hi / lo)
                                           * self._inv_log_g))
        self._counts: List[int] = [0] * self._nbuckets
        # Last-bucket memo: consecutive samples tend to land in the same
        # bucket (latency distributions are peaky), so remember the last
        # bucket's (lo, hi] bounds and skip the log() when the next sample
        # falls inside them.  Initialised to an empty interval.
        self._memo_lo = math.inf
        self._memo_hi = -math.inf
        self._memo_index = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._memo_lo < value <= self._memo_hi:
            self._counts[self._memo_index] += 1
            return
        if value <= self.lo:
            index = 0
            self._memo_lo = -math.inf
            self._memo_hi = self.lo
        else:
            index = 1 + int(math.log(value / self.lo) * self._inv_log_g)
            if index >= self._nbuckets:
                index = self._nbuckets - 1
                self._memo_lo = self.lo * self.growth ** (index - 1)
                self._memo_hi = math.inf
            else:
                self._memo_lo = self.lo * self.growth ** (index - 1)
                self._memo_hi = self.lo * self.growth ** index
        self._memo_index = index
        self._counts[index] += 1

    # The WIRT hot path calls this alias; identical to :meth:`observe`.
    record = observe

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The value at rank ``ceil(q * count)``, 0.0 if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index == 0:
                    estimate = self.lo
                else:
                    estimate = self.lo * self.growth ** (index - 0.5)
                return min(max(estimate, self.min), self.max)
        return self.max  # unreachable: cumulative ends at count

    def percentiles(self) -> Dict[str, float]:
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def summary(self) -> Dict[str, float]:
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            **self.percentiles(),
        }

    def __repr__(self) -> str:
        return f"<StreamingHistogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named instruments for one run, attached to the simulator.

    The harness installs it as ``sim.metrics`` *before* building any
    component, so construction-time ``registry_of(sim).counter(...)``
    calls all land here.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            gauge.bind(fn)
        return gauge

    def histogram(self, name: str, lo: float = 1e-6, hi: float = 1e7,
                  growth: float = 2.0 ** 0.25) -> StreamingHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = StreamingHistogram(
                name, lo=lo, hi=hi, growth=growth)
        return histogram

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    def histograms(self) -> Dict[str, StreamingHistogram]:
        return dict(self._histograms)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments' current values, JSON-serializable."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.read()
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self._histograms.items())},
        }


class _NullCounter:
    """Shared no-op counter handed out when observability is off."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"

    def bind(self, fn) -> None:
        pass

    def read(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    record = observe

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


class NullRegistry:
    """Registry stand-in whose instruments are shared no-ops."""

    enabled = False
    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def counter(self, name: str) -> _NullCounter:
        return self._counter

    def gauge(self, name: str, fn=None) -> _NullGauge:
        return self._gauge

    def histogram(self, name: str, **_bounds) -> _NullHistogram:
        return self._histogram

    def counters(self) -> Dict[str, Counter]:
        return {}

    def gauges(self) -> Dict[str, Gauge]:
        return {}

    def histograms(self) -> Dict[str, StreamingHistogram]:
        return {}

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The registry every uninstrumented simulation sees.
NULL_REGISTRY = NullRegistry()


def registry_of(sim) -> MetricsRegistry:
    """The simulator's registry, or the no-op one if none is attached."""
    registry = getattr(sim, "metrics", None)
    return registry if registry is not None else NULL_REGISTRY


# ----------------------------------------------------------------------
# Prometheus textfile exposition
# ----------------------------------------------------------------------

def _prom_name(name: str, prefix: str) -> str:
    """A legal Prometheus metric name: dots and other punctuation in our
    hierarchical names become underscores (``paxos.mode_changes`` ->
    ``repro_paxos_mode_changes``)."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}{sanitized}"


def _prom_value(value: Any) -> str:
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number == math.inf:
        return "+Inf"
    if number == -math.inf:
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def to_prometheus(snapshot: Dict[str, Any], prefix: str = "repro_") -> str:
    """Render a registry :meth:`~MetricsRegistry.snapshot` (live or
    loaded back from a result JSON) in the Prometheus text exposition
    format, suitable for the node-exporter textfile collector.

    Counters and gauges map directly; each histogram summary becomes a
    Prometheus *summary* -- ``{quantile="0.5|0.95|0.99"}`` series plus
    ``_sum``/``_count`` -- which is the honest rendering of a quantile
    sketch (no cumulative buckets to reconstruct).
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("0.99", "p99")):
            lines.append(f'{metric}{{quantile="{quantile}"}} '
                         f"{_prom_value(summary.get(key, 0.0))}")
        lines.append(f"{metric}_sum {_prom_value(summary.get('sum', 0.0))}")
        lines.append(f"{metric}_count "
                     f"{_prom_value(summary.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")
