"""A cluster machine: CPU, disk, processes, and crash/restart semantics.

A :class:`Node` separates what a crash destroys from what it spares:

* **volatile** -- running processes (killed), CPU queue (reset), message
  handlers (cleared), anything the application kept in plain memory;
* **persistent** -- the :class:`~repro.sim.disk.Disk` contents that were
  durable at crash time.

``crash()`` is the paper's "abrupt server shutdown (kill at the OS level)";
``restart()`` powers the hardware back on, after which a boot function (set
by deployment code and invoked by the watchdog) re-instantiates the
application from disk -- the paper's "abrupt server reboot".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.sim.core import Process, SimulationError, Simulator
from repro.sim.disk import Disk, DiskParams
from repro.sim.network import Network
from repro.sim.resource import ServiceStation
from repro.sim.trace import emit as trace_emit


class Node:
    """One simulated machine attached to the cluster network."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 disk_params: Optional[DiskParams] = None,
                 cpu_speed: float = 1.0):
        self.sim = sim
        self.network = network
        self.name = name
        self.alive = True
        self.incarnation = 0
        self.cpu_speed = cpu_speed
        self.disk = Disk(sim, disk_params, name=f"{name}-disk")
        self.cpu = ServiceStation(sim, name=f"{name}-cpu", speed=cpu_speed)
        self.boot: Optional[Callable[["Node"], None]] = None
        self._processes: List[Process] = []
        self._handlers: Dict[str, Callable[[Any, str], None]] = {}
        self._crash_listeners: List[Callable[["Node"], None]] = []
        self._volatile_crash_hooks: List[Callable[[], None]] = []
        self.crash_count = 0
        self.last_crash_at: Optional[float] = None
        self.last_restart_at: Optional[float] = None
        network.register(self)

    # ------------------------------------------------------------------
    # hosting
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        """Run a process on this node; it dies if the node crashes."""
        if not self.alive:
            raise SimulationError(f"cannot spawn on crashed node {self.name}")
        process = self.sim.spawn(gen, name=f"{self.name}/{name}" if name else "")
        self._processes.append(process)
        process.on_finish(self._reap)
        return process

    def _reap(self, process: Process) -> None:
        try:
            self._processes.remove(process)
        except ValueError:
            pass  # already cleared by a crash

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def handle(self, port: str, fn: Callable[[Any, str], None]) -> None:
        """Register ``fn(payload, src)`` for messages arriving on ``port``."""
        self._handlers[port] = fn

    def unhandle(self, port: str) -> None:
        self._handlers.pop(port, None)

    def dispatch(self, port: str, payload: Any, src: str) -> None:
        if not self.alive:
            return
        handler = self._handlers.get(port)
        if handler is not None:
            handler(payload, src)

    def send(self, dst: str, port: str, payload: Any,
             size_mb: float = 0.0005, trace: Optional[str] = None) -> None:
        """Send a datagram; a dead node cannot speak."""
        if not self.alive:
            return
        self.network.send(self.name, dst, port, payload, size_mb,
                          trace=trace)

    # ------------------------------------------------------------------
    # failure semantics
    # ------------------------------------------------------------------
    def add_crash_listener(self, fn: Callable[["Node"], None]) -> None:
        """Observe crashes (e.g. the proxy's broken-connection signal).

        Listeners persist across restarts; they model effects that propagate
        outside the dead machine, like TCP resets.
        """
        self._crash_listeners.append(fn)

    def add_volatile_crash_hook(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` once at the next crash, then forget it.

        For per-incarnation cleanup (e.g. a write-ahead log dropping its
        un-flushed tail); re-registered by whatever boots the next
        incarnation.
        """
        self._volatile_crash_hooks.append(fn)

    def crash(self) -> None:
        """Abrupt shutdown: kill everything volatile, keep the disk."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        self.last_crash_at = self.sim.now
        trace_emit(self.sim, "node", self.name, event="crash",
                   incarnation=self.incarnation)
        processes, self._processes = self._processes, []
        for process in processes:
            process.kill()
        self._handlers.clear()
        self.cpu.reset()
        self.disk.on_crash()
        hooks, self._volatile_crash_hooks = self._volatile_crash_hooks, []
        for hook in hooks:
            hook()
        for listener in list(self._crash_listeners):
            listener(self)

    def restart(self) -> None:
        """Power back on with empty volatile state; disk contents intact."""
        if self.alive:
            raise SimulationError(f"node {self.name} is already running")
        self.alive = True
        self.incarnation += 1
        self.last_restart_at = self.sim.now
        trace_emit(self.sim, "node", self.name, event="restart",
                   incarnation=self.incarnation)
        self.cpu = ServiceStation(self.sim, name=f"{self.name}-cpu",
                                  speed=self.cpu_speed)

    def reboot(self) -> None:
        """restart() then run the deployment-provided boot function."""
        self.restart()
        if self.boot is not None:
            self.boot(self)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Node {self.name} {state} inc={self.incarnation}>"
