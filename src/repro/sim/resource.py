"""FIFO single-server queueing resource.

Models a CPU (or any serially shared device): requests are served one at a
time in arrival order, so response time = queueing delay + service time.
Saturation behaviour -- the knee in the paper's WIPS/WIRT curves -- emerges
from this queue.

The station is callback-driven rather than held by client processes, so a
client killed mid-service (node crash) cannot leak the resource: the station
simply keeps serving its queue, and :meth:`reset` empties it when the device
itself dies with the node.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.sim.core import Event, SimulationError, Simulator


class ServiceStation:
    """Single server, FIFO discipline, explicit service times."""

    def __init__(self, sim: Simulator, name: str = "station",
                 speed: float = 1.0):
        if speed <= 0:
            raise SimulationError(f"speed must be positive, got {speed}")
        self._sim = sim
        self.name = name
        self.speed = speed  # a job of cost c occupies the server c/speed
        # Two service classes model OS time-slicing: short middleware work
        # (priority 0: consensus messages, the state-machine applier) is
        # served before queued request threads (priority 1), without
        # preempting the job in service.  Under web-tier saturation this
        # keeps sub-millisecond protocol steps from waiting behind queues
        # of multi-millisecond page renders, as thread scheduling does on
        # a real server.
        self._queues: Tuple[Deque[Tuple[float, Event]], ...] = (deque(), deque())
        self._busy = False
        self._epoch = 0
        self.total_busy_time = 0.0
        self.jobs_served = 0

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return sum(len(q) for q in self._queues)

    def request(self, service_time: float, priority: int = 0) -> Event:
        """Enqueue a job needing ``service_time``; the event fires when done.

        ``priority`` 0 (default) is the middleware class; 1 is the bulk
        request class.  FIFO within each class.
        """
        if service_time < 0:
            raise SimulationError(f"negative service time: {service_time}")
        done = self._sim.event()
        self._queues[priority].append((service_time, done))
        if not self._busy:
            self._serve_next()
        return done

    def reset(self) -> None:
        """Drop all queued and in-flight work (the device died).

        Pending completion events never fire; their waiters are expected to
        be dead too (killed with the same node) or to use timeouts.
        """
        for queue in self._queues:
            queue.clear()
        self._busy = False
        self._epoch += 1

    # ------------------------------------------------------------------
    def _serve_next(self) -> None:
        queue = next((q for q in self._queues if q), None)
        if queue is None:
            self._busy = False
            return
        self._busy = True
        service_time, done = queue.popleft()
        epoch = self._epoch
        occupancy = service_time / self.speed
        self.total_busy_time += occupancy
        self._sim.call_after(occupancy, self._complete, epoch, done)

    def _complete(self, epoch: int, done: Event) -> None:
        if epoch != self._epoch:
            return  # station was reset while this job was in service
        self.jobs_served += 1
        if not done.triggered:
            done.succeed(None)
        self._serve_next()
