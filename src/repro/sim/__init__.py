"""Deterministic discrete-event simulation substrate.

This package replaces the paper's physical testbed (an 18-node cluster with
1 Gbps Ethernet and local 7200-rpm disks) with a simulated one.  It provides:

* :class:`~repro.sim.core.Simulator` -- the event loop and virtual clock.
* :class:`~repro.sim.core.Process` -- generator-based cooperative processes.
* :class:`~repro.sim.core.Event`, :class:`~repro.sim.core.Timeout`,
  :class:`~repro.sim.core.Channel` -- synchronization primitives.
* :class:`~repro.sim.resource.ServiceStation` -- FIFO single-server queueing
  resource used to model CPUs.
* :class:`~repro.sim.disk.Disk` and :class:`~repro.sim.disk.WriteAheadLog` --
  stable storage with fsync semantics and group commit.
* :class:`~repro.sim.network.Network` -- message passing with latency and
  bandwidth costs.
* :class:`~repro.sim.node.Node` -- a cluster machine with crash/restart
  semantics: volatile state (CPU queue, processes) dies with the node, the
  disk survives.
* :class:`~repro.sim.rng.SeedTree` -- deterministic, named random streams.
"""

from repro.sim.core import (
    AllOf,
    Channel,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.disk import (
    CorruptObject,
    Disk,
    DiskParams,
    LogFrame,
    StorageFault,
    StorageNemesis,
    WriteAheadLog,
)
from repro.sim.network import (
    Message,
    Nemesis,
    NemesisParams,
    NemesisWindow,
    Network,
    NetworkParams,
)
from repro.sim.node import Node
from repro.sim.resource import ServiceStation
from repro.sim.rng import SeedTree

__all__ = [
    "AllOf",
    "Channel",
    "CorruptObject",
    "Disk",
    "DiskParams",
    "LogFrame",
    "Event",
    "Interrupted",
    "Message",
    "Nemesis",
    "NemesisParams",
    "NemesisWindow",
    "Network",
    "NetworkParams",
    "Node",
    "Process",
    "SeedTree",
    "ServiceStation",
    "SimulationError",
    "Simulator",
    "StorageFault",
    "StorageNemesis",
    "Timeout",
    "WriteAheadLog",
]
