"""Event loop, processes, and synchronization primitives.

The kernel is a classic calendar-queue discrete-event simulator.  Code that
needs to *wait* is written as a generator that yields *awaitables*:

* ``yield sim.timeout(2.5)`` -- sleep 2.5 simulated seconds.
* ``yield event`` -- wait until :meth:`Event.succeed` is called.
* ``yield channel.get()`` -- wait for the next item in a FIFO channel.
* ``yield other_process`` -- wait for another process to finish.

A generator becomes a running :class:`Process` via :meth:`Simulator.spawn`.
Processes can be killed (e.g. when the simulated node hosting them crashes);
a killed process simply never resumes, mirroring the abrupt death of an OS
process.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupted(Exception):
    """Raised inside a process that is interrupted via :meth:`Process.interrupt`."""


class Simulator:
    """The discrete-event engine: a virtual clock and an ordered event heap.

    Events scheduled for the same instant fire in scheduling order, which
    keeps runs fully deterministic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Any] = []
        # Zero-delay fast path: the overwhelming majority of scheduled
        # events are ``call_after(0, ...)`` (process starts, event fires,
        # channel hand-offs).  Those never need heap ordering -- they fire
        # at the current instant, in scheduling order -- so they go into a
        # FIFO deque instead of the heap.  ``step`` merges the two
        # structures by the same global (when, seq) key, keeping the event
        # order bit-for-bit identical to an all-heap kernel.
        self._ready: Deque[Timer] = deque()
        self._counter = itertools.count()
        self._processes_started = 0
        # Optional hooks attached by the harness: a metrics registry
        # (repro.obs.registry), an event-kernel profiler, and a causal
        # span tracer (repro.obs.trace).  All stay None on
        # uninstrumented runs; the profiler is the only one the kernel
        # itself consults (one None-check per event).
        self.metrics = None
        self.profiler = None
        self.spans = None
        # The process currently being resumed, for trace propagation:
        # code running inside a process can ask "whose causal context am
        # I in?" without threading arguments through every generator.
        self._current: Optional["Process"] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> "Timer":
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self.now}"
            )
        timer = Timer(when, next(self._counter), fn, args)
        heapq.heappush(self._heap, timer)
        return timer

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> "Timer":
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay == 0:
            # O(1) append instead of an O(log n) heap push; see __init__.
            timer = Timer(self.now, next(self._counter), fn, args)
            self._ready.append(timer)
            return timer
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn, *args)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional["Timer"]:
        """Pop the globally next live timer by (when, seq), or None.

        The ready deque holds zero-delay timers in scheduling order; the
        heap holds everything else.  Comparing the deque head against the
        heap top by the shared (when, seq) key reproduces exactly the order
        a single heap would produce.
        """
        ready = self._ready
        heap = self._heap
        while True:
            if ready:
                head = ready[0]
                if head.cancelled:
                    ready.popleft()
                    continue
                if heap:
                    top = heap[0]
                    if top.cancelled:
                        heapq.heappop(heap)
                        continue
                    if top.when < head.when or (
                        top.when == head.when and top.seq < head.seq
                    ):
                        return heapq.heappop(heap)
                ready.popleft()
                return head
            if heap:
                timer = heapq.heappop(heap)
                if timer.cancelled:
                    continue
                return timer
            return None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        timer = self._pop_next()
        if timer is None:
            return False
        self.now = timer.when
        profiler = self.profiler
        if profiler is None:
            timer.fn(*timer.args)
        else:
            start = profiler.clock()
            timer.fn(*timer.args)
            profiler.record(timer.fn, profiler.clock() - start)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or the clock would pass ``until``.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the simulation went quiet earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is None:
            while self.step():
                pass
            return
        while True:
            if self._ready:
                head = self._ready[0]
                if head.cancelled:
                    self._ready.popleft()
                    continue
                if head.when > until:
                    break
                self.step()
                continue
            if not self._heap:
                break
            timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if timer.when > until:
                break
            self.step()
        if until > self.now:
            self.now = until

    # ------------------------------------------------------------------
    # processes and primitives
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator[Any, Any, Any], name: str = "") -> "Process":
        """Start a generator as a concurrent process."""
        self._processes_started += 1
        return Process(self, gen, name or f"proc-{self._processes_started}")

    def timeout(self, delay: float) -> "Timeout":
        """An awaitable that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay)

    def event(self) -> "Event":
        """A fresh, untriggered :class:`Event`."""
        return Event(self)

    def channel(self) -> "Channel":
        """A fresh FIFO :class:`Channel`."""
        return Channel(self)

    def run_process(self, gen: Generator[Any, Any, Any]) -> Any:
        """Convenience for tests: run ``gen`` to completion and return its value."""
        proc = self.spawn(gen)
        self.run()
        if not proc.finished:
            raise SimulationError("process did not finish (deadlock?)")
        if proc.error is not None:
            raise proc.error
        return proc.value


class Timer:
    """A cancellable entry in the simulator's event heap."""

    __slots__ = ("when", "seq", "fn", "args", "cancelled")

    def __init__(self, when: float, seq: int, fn: Callable[..., None], args: tuple):
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class Awaitable:
    """Base protocol for objects a process may ``yield``."""

    def _subscribe(self, process: "Process") -> None:
        raise NotImplementedError


class Timeout(Awaitable):
    """Resumes the waiting process after a fixed delay."""

    def __init__(self, sim: Simulator, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self._sim = sim
        self._delay = delay

    def _subscribe(self, process: "Process") -> None:
        self._sim.call_after(self._delay, process._resume, None)


class Event(Awaitable):
    """A one-shot event that multiple processes may wait on.

    ``succeed(value)`` resumes all waiters with ``value``; ``fail(exc)``
    raises ``exc`` inside them.  Triggering twice is an error; waiting on an
    already-triggered event resumes immediately.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._waiters: List[Process] = []
        self._callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.ok = False
        self.value: Any = None
        self.error: Optional[BaseException] = None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self._fire()
        return self

    def fail(self, error: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = False
        self.error = error
        self._fire()
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(self)`` when the event triggers (immediately if it has)."""
        if self.triggered:
            self._sim.call_after(0, fn, self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        for process in waiters:
            if self.ok:
                self._sim.call_after(0, process._resume, self.value)
            else:
                self._sim.call_after(0, process._throw, self.error)
        for fn in callbacks:
            self._sim.call_after(0, fn, self)

    def _subscribe(self, process: "Process") -> None:
        if self.triggered:
            if self.ok:
                self._sim.call_after(0, process._resume, self.value)
            else:
                self._sim.call_after(0, process._throw, self.error)
        else:
            self._waiters.append(process)


class Channel(Awaitable):
    """Unbounded FIFO channel.

    ``put`` never blocks; ``get`` returns an awaitable that yields the next
    item.  Yielding the channel itself is shorthand for ``yield ch.get()``.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            event = self._getters.popleft()
            if not event.triggered:
                event.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        event = self._sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> List[Any]:
        """Remove and return all queued items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items

    def take(self, max_items: int) -> List[Any]:
        """Remove and return up to ``max_items`` queued items, no waiting."""
        items: List[Any] = []
        while self._items and len(items) < max_items:
            items.append(self._items.popleft())
        return items

    def _subscribe(self, process: "Process") -> None:
        self.get()._subscribe(process)


class AllOf(Awaitable):
    """Awaitable that fires when every child event has triggered.

    The resumed value is the list of child values, in the order given.
    A failing child fails the composite with the same exception.
    """

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        self._sim = sim
        self._events = list(events)
        self._done = sim.event()
        self._remaining = len(self._events)
        if self._remaining == 0:
            self._done.succeed([])
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._done.triggered:
            return
        if not event.ok:
            self._done.fail(event.error)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._done.succeed([e.value for e in self._events])

    def _subscribe(self, process: "Process") -> None:
        self._done._subscribe(process)


class Process(Awaitable):
    """A running generator.  Also awaitable: waiting on it joins it."""

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.killed = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: List[Process] = []
        self._join_callbacks: List[Callable[["Process"], None]] = []
        # Causal context: a trace id stamped on request-handling
        # processes so work running under them can be attributed.
        self.trace: Optional[str] = None
        sim.call_after(0, self._resume, None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Stop the process dead: it never runs again.

        Used to model a machine crash; the process gets no chance to clean
        up, exactly like a killed OS process.  Joiners are *not* notified
        (on a crashed node they are dead too; cross-node observers must use
        timeouts or failure detection, as in a real distributed system).
        """
        if self.finished:
            return
        self.killed = True
        self.finished = True
        self._gen.close()

    def interrupt(self, reason: str = "") -> None:
        """Raise :class:`Interrupted` inside the process at its wait point."""
        if self.finished:
            return
        self._sim.call_after(0, self._throw, Interrupted(reason))

    def on_finish(self, fn: Callable[["Process"], None]) -> None:
        """Run ``fn(self)`` when the process finishes normally or with error."""
        if self.finished and not self.killed:
            self._sim.call_after(0, fn, self)
        else:
            self._join_callbacks.append(fn)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        self._sim._current = self
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Exception as exc:  # noqa: BLE001 - process body failed
            self._finish(None, exc)
            return
        finally:
            self._sim._current = None
        self._wait_on(yielded)

    def _throw(self, error: BaseException) -> None:
        if self.finished:
            return
        self._sim._current = self
        try:
            yielded = self._gen.throw(error)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Exception as exc:  # noqa: BLE001
            self._finish(None, exc)
            return
        finally:
            self._sim._current = None
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Awaitable):
            yielded._subscribe(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded a non-awaitable: {yielded!r}"
            )

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        self.finished = True
        self.value = value
        self.error = error
        joiners, self._joiners = self._joiners, []
        callbacks, self._join_callbacks = self._join_callbacks, []
        for joiner in joiners:
            if error is None:
                self._sim.call_after(0, joiner._resume, value)
            else:
                self._sim.call_after(0, joiner._throw, error)
        for fn in callbacks:
            self._sim.call_after(0, fn, self)
        if error is not None and not joiners and not callbacks:
            # Nobody is watching: surface the failure instead of losing it.
            raise error

    # ------------------------------------------------------------------
    # awaitable protocol (join)
    # ------------------------------------------------------------------
    def _subscribe(self, process: "Process") -> None:
        if self.killed:
            return  # joining a killed process waits forever, like a dead peer
        if self.finished:
            if self.error is None:
                self._sim.call_after(0, process._resume, self.value)
            else:
                self._sim.call_after(0, process._throw, self.error)
        else:
            self._joiners.append(process)

    def __repr__(self) -> str:
        state = "killed" if self.killed else ("done" if self.finished else "running")
        return f"<Process {self.name} {state}>"
