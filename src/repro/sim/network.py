"""Cluster interconnect: unicast messages with latency and bandwidth costs.

Models the paper's single 1 Gbps Ethernet switch.  A message from A to B
arrives after ``base_latency + size/bandwidth + jitter``.  Messages to a
crashed node are silently dropped (UDP semantics; TCP-level connection
breakage is modelled where it matters, at the reverse proxy, via node crash
listeners).  Messages addressed to a node that crashed and restarted while
they were in flight are also dropped -- the old connection is gone.

Partitions can be injected for tests via :meth:`Network.block` /
:meth:`Network.unblock` (symmetric) and :meth:`Network.block_oneway` /
:meth:`Network.unblock_oneway` (asymmetric: only the ``src -> dst``
direction is cut, modelling one-way link loss).

Beyond partitions, a :class:`Nemesis` can be attached to the switch to
misbehave probabilistically: seed-deterministic message **drop**,
**duplication**, and **delay spikes** (which reorder), configurable per
directed node-pair and per time window.  The nemesis is the message-level
adversary the consensus safety checker (:mod:`repro.faults.checker`)
validates the replication stack against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sim.core import SimulationError, Simulator
from repro.sim.rng import SeedTree
from repro.sim.trace import emit as trace_emit


@dataclass(frozen=True)
class NetworkParams:
    """Latency/bandwidth calibration for the simulated switch."""

    base_latency_s: float = 0.00015
    bandwidth_mb_s: float = 110.0
    jitter_mean_s: float = 0.00005


@dataclass
class Message:
    """One network datagram (kept for tracing and tests)."""

    src: str
    dst: str
    port: str
    payload: Any
    size_mb: float
    sent_at: float = 0.0
    # Open hop span piggybacked on the datagram when span tracing is on;
    # shared by duplicate copies (the first delivery closes it).
    span: Any = None
    # Scheduled delivery copies still outstanding; when it reaches zero the
    # object may be recycled through the network's freelist (untraced runs
    # only -- traced messages carry a live span and are never pooled).
    _copies: int = 1


# ======================================================================
# nemesis: the probabilistic message-level adversary
# ======================================================================
@dataclass(frozen=True)
class NemesisParams:
    """Misbehaviour intensities for one nemesis window.

    Each datagram matched by the window independently suffers:

    * **drop** with probability ``drop_p`` (it never arrives);
    * **duplication** with probability ``duplicate_p`` (a second copy is
      delivered after its own latency draw);
    * a **delay spike** with probability ``delay_p``: an extra
      exponential delay of mean ``delay_mean_s`` is added, which reorders
      the message behind traffic sent after it.
    """

    drop_p: float = 0.0
    duplicate_p: float = 0.0
    delay_p: float = 0.0
    delay_mean_s: float = 0.02

    def __post_init__(self):
        for name in ("drop_p", "duplicate_p", "delay_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")
        if self.delay_mean_s <= 0.0:
            raise ValueError(f"delay_mean_s must be positive, "
                             f"got {self.delay_mean_s!r}")

    @property
    def is_noop(self) -> bool:
        return (self.drop_p == 0.0 and self.duplicate_p == 0.0
                and self.delay_p == 0.0)


@dataclass(frozen=True)
class NemesisWindow:
    """One scheduled stretch of misbehaviour.

    ``pairs`` is a frozenset of *directed* ``(src, dst)`` name pairs the
    window applies to, or ``None`` for all traffic.  ``end`` may be
    ``math.inf`` for an open-ended window.
    """

    start: float
    end: float
    params: NemesisParams
    pairs: Optional[FrozenSet[Tuple[str, str]]] = None

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(
                f"window ends ({self.end}) before it starts ({self.start})")

    def matches(self, now: float, src: str, dst: str) -> bool:
        if not self.start <= now < self.end:
            return False
        return self.pairs is None or (src, dst) in self.pairs


class Nemesis:
    """Seed-deterministic message adversary attached to a :class:`Network`.

    Windows are consulted at *send* time; every active window rolls its
    dice independently (drops compose, extra delays add up).  All draws
    come from one named stream of the experiment seed, so a run is
    bit-for-bit reproducible from ``(seed, schedule)``.
    """

    def __init__(self, sim: Simulator, seed: Optional[SeedTree] = None):
        self._sim = sim
        self._rng = (seed or SeedTree(0)).fork_random("nemesis")
        self.windows: List[NemesisWindow] = []
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    # ------------------------------------------------------------------
    def add_window(self, window: NemesisWindow) -> None:
        self.windows.append(window)

    def schedule(self, start: float, end: float = math.inf,
                 params: Optional[NemesisParams] = None,
                 pairs=None, **param_kwargs) -> NemesisWindow:
        """Convenience: build and register a window.

        Either pass a ready :class:`NemesisParams` or its fields as
        keyword arguments (``drop_p=0.2`` etc.).  ``pairs`` accepts any
        iterable of directed name pairs.
        """
        if params is None:
            params = NemesisParams(**param_kwargs)
        elif param_kwargs:
            raise ValueError("pass params or keyword intensities, not both")
        window = NemesisWindow(
            start, end, params,
            pairs=None if pairs is None else frozenset(pairs))
        self.add_window(window)
        return window

    def clear(self) -> None:
        self.windows.clear()

    @property
    def counters(self) -> Dict[str, int]:
        return {"dropped": self.dropped, "duplicated": self.duplicated,
                "delayed": self.delayed}

    # ------------------------------------------------------------------
    def fate(self, now: float, src: str, dst: str, port: str) -> List[float]:
        """Decide a datagram's fate: a list of extra delays, one entry per
        copy to deliver.  ``[]`` means the message is dropped; ``[0.0]``
        is an unmolested delivery; ``[0.0, 0.0]`` a duplication."""
        active = [w for w in self.windows if w.matches(now, src, dst)]
        if not active:
            return [0.0]
        copies = 1
        extra = 0.0
        for window in active:
            params = window.params
            if params.drop_p and self._rng.random() < params.drop_p:
                self.dropped += 1
                trace_emit(self._sim, "nemesis", f"{src}->{dst}",
                           event="dropped", port=port)
                return []
            if params.duplicate_p and self._rng.random() < params.duplicate_p:
                copies += 1
                self.duplicated += 1
                trace_emit(self._sim, "nemesis", f"{src}->{dst}",
                           event="duplicated", port=port)
            if params.delay_p and self._rng.random() < params.delay_p:
                spike = self._rng.expovariate(1.0 / params.delay_mean_s)
                extra += spike
                self.delayed += 1
                trace_emit(self._sim, "nemesis", f"{src}->{dst}",
                           event="delayed", port=port, extra_s=round(spike, 6))
        return [extra] * copies


class Network:
    """The switch: knows every node, delivers datagrams with delay."""

    def __init__(self, sim: Simulator, params: Optional[NetworkParams] = None,
                 seed: Optional[SeedTree] = None,
                 nemesis: Optional[Nemesis] = None):
        self._sim = sim
        self.params = params or NetworkParams()
        self._spans = getattr(sim, "spans", None)
        self._rng = (seed or SeedTree(0)).fork_random("network-jitter")
        self._nodes: Dict[str, Any] = {}
        self._blocked: Set[Tuple[str, str]] = set()
        self.nemesis = nemesis
        # Optional geo-replication delay model (repro.geo.GeoDelayModel):
        # when attached, per-message latency/bandwidth/jitter come from
        # the DC-to-DC link matrix instead of the flat switch params.
        self.geo = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.mb_sent = 0.0
        self.wan_messages_sent = 0
        self.wan_mb_sent = 0.0
        # Scheduled-but-not-yet-delivered traffic (per delivery copy);
        # observability gauges read these to chart switch congestion.
        self.inflight_messages = 0
        self.inflight_mb = 0.0
        # Freelist of delivered Message shells.  Allocation of a datagram
        # object per send is one of the kernel's hottest allocation sites;
        # recycling keeps the steady-state rate near zero.
        self._pool: List[Message] = []

    # ------------------------------------------------------------------
    def register(self, node: Any) -> None:
        if node.name in self._nodes:
            raise SimulationError(f"duplicate node name: {node.name}")
        self._nodes[node.name] = node

    def node(self, name: str) -> Any:
        return self._nodes[name]

    def node_names(self):
        return list(self._nodes)

    def set_geo(self, model: Any) -> None:
        """Attach a geo delay model; pass ``None`` to restore the flat
        single-switch calibration."""
        self.geo = model

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def block(self, a: str, b: str) -> None:
        """Drop all traffic between ``a`` and ``b`` (both directions)."""
        self._blocked.add((a, b))
        self._blocked.add((b, a))

    def unblock(self, a: str, b: str) -> None:
        self._blocked.discard((a, b))
        self._blocked.discard((b, a))

    def block_oneway(self, src: str, dst: str) -> None:
        """Asymmetric loss: drop only the ``src -> dst`` direction.

        ``dst`` can still reach ``src`` -- the classic asymmetric-link
        failure that crash-only faultloads never exercise.  Messages
        already in flight are dropped at delivery time."""
        self._blocked.add((src, dst))

    def unblock_oneway(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, port: str, payload: Any,
             size_mb: float = 0.0005, trace: Optional[str] = None) -> None:
        """Fire-and-forget datagram; delivery is scheduled, never guaranteed."""
        if dst not in self._nodes:
            raise SimulationError(f"unknown destination node: {dst}")
        tracer = self._spans
        if (src, dst) in self._blocked:
            if tracer is not None:
                tracer.instant("net", f"{src}->{dst}", trace=trace,
                               port=port, cause="partition")
            return
        fates = [0.0]
        if self.nemesis is not None:
            fates = self.nemesis.fate(self._sim.now, src, dst, port)
        self.messages_sent += 1
        self.mb_sent += size_mb
        if not fates:
            if tracer is not None:
                tracer.instant("net", f"{src}->{dst}", trace=trace,
                               port=port, cause="dropped")
            return  # eaten by the nemesis
        target = self._nodes[dst]
        incarnation = target.incarnation
        if tracer is None and self._pool:
            message = self._pool.pop()
            message.src = src
            message.dst = dst
            message.port = port
            message.payload = payload
            message.size_mb = size_mb
            message.sent_at = self._sim.now
        else:
            message = Message(src, dst, port, payload, size_mb,
                              sent_at=self._sim.now)
        if self.geo is None:
            wan = False
            latency = self.params.base_latency_s
            transmit_s = size_mb / self.params.bandwidth_mb_s
            jitter_mean_s = self.params.jitter_mean_s
        else:
            link, wan, factor = self.geo.link_for(self._sim.now, src, dst)
            latency = link.latency_s * factor
            transmit_s = size_mb / link.bandwidth_mb_s
            jitter_mean_s = link.jitter_mean_s
            if wan:
                self.wan_messages_sent += 1
                self.wan_mb_sent += size_mb
                self.geo.wan_messages += 1
                self.geo.wan_mb += size_mb
        if tracer is not None:
            if wan:
                message.span = tracer.begin("net", f"{src}->{dst}",
                                            trace=trace, port=port, wan=True)
            else:
                message.span = tracer.begin("net", f"{src}->{dst}",
                                            trace=trace, port=port)
        message._copies = len(fates)
        for extra_delay in fates:
            delay = (latency + transmit_s
                     + self._rng.expovariate(1.0 / jitter_mean_s)
                     + extra_delay)
            self.inflight_messages += 1
            self.inflight_mb += size_mb
            self._sim.call_after(delay, self._deliver, message, incarnation)

    def _deliver(self, message: Message, incarnation: int) -> None:
        self.inflight_messages -= 1
        self.inflight_mb -= message.size_mb
        span = message.span
        target = self._nodes.get(message.dst)
        if target is None or not target.alive:
            if span is not None:
                self._spans.finish(span, cause="dest_down")
            self._release(message)
            return
        if target.incarnation != incarnation:
            if span is not None:
                self._spans.finish(span, cause="stale_incarnation")
            self._release(message)
            return  # node restarted while the message was in flight
        if (message.src, message.dst) in self._blocked:
            if span is not None:
                self._spans.finish(span, cause="partition")
            self._release(message)
            return
        self.messages_delivered += 1
        if span is not None:
            self._spans.finish(span)
        # Extract before releasing: dispatch may synchronously send new
        # datagrams that reuse this very shell from the pool.
        port, payload, src = message.port, message.payload, message.src
        self._release(message)
        target.dispatch(port, payload, src)

    def _release(self, message: Message) -> None:
        """Return a fully-delivered, untraced datagram shell to the pool."""
        message._copies -= 1
        if message._copies == 0 and message.span is None:
            message.payload = None
            if len(self._pool) < 512:
                self._pool.append(message)
