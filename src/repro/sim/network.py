"""Cluster interconnect: unicast messages with latency and bandwidth costs.

Models the paper's single 1 Gbps Ethernet switch.  A message from A to B
arrives after ``base_latency + size/bandwidth + jitter``.  Messages to a
crashed node are silently dropped (UDP semantics; TCP-level connection
breakage is modelled where it matters, at the reverse proxy, via node crash
listeners).  Messages addressed to a node that crashed and restarted while
they were in flight are also dropped -- the old connection is gone.

Partitions can be injected for tests via :meth:`Network.block` /
:meth:`Network.unblock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.sim.core import SimulationError, Simulator
from repro.sim.rng import SeedTree


@dataclass(frozen=True)
class NetworkParams:
    """Latency/bandwidth calibration for the simulated switch."""

    base_latency_s: float = 0.00015
    bandwidth_mb_s: float = 110.0
    jitter_mean_s: float = 0.00005


@dataclass
class Message:
    """One network datagram (kept for tracing and tests)."""

    src: str
    dst: str
    port: str
    payload: Any
    size_mb: float
    sent_at: float = 0.0


class Network:
    """The switch: knows every node, delivers datagrams with delay."""

    def __init__(self, sim: Simulator, params: Optional[NetworkParams] = None,
                 seed: Optional[SeedTree] = None):
        self._sim = sim
        self.params = params or NetworkParams()
        self._rng = (seed or SeedTree(0)).fork_random("network-jitter")
        self._nodes: Dict[str, Any] = {}
        self._blocked: Set[Tuple[str, str]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.mb_sent = 0.0

    # ------------------------------------------------------------------
    def register(self, node: Any) -> None:
        if node.name in self._nodes:
            raise SimulationError(f"duplicate node name: {node.name}")
        self._nodes[node.name] = node

    def node(self, name: str) -> Any:
        return self._nodes[name]

    def node_names(self):
        return list(self._nodes)

    # ------------------------------------------------------------------
    # fault injection for tests
    # ------------------------------------------------------------------
    def block(self, a: str, b: str) -> None:
        """Drop all traffic between ``a`` and ``b`` (both directions)."""
        self._blocked.add((a, b))
        self._blocked.add((b, a))

    def unblock(self, a: str, b: str) -> None:
        self._blocked.discard((a, b))
        self._blocked.discard((b, a))

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, port: str, payload: Any,
             size_mb: float = 0.0005) -> None:
        """Fire-and-forget datagram; delivery is scheduled, never guaranteed."""
        if dst not in self._nodes:
            raise SimulationError(f"unknown destination node: {dst}")
        if (src, dst) in self._blocked:
            return
        target = self._nodes[dst]
        incarnation = target.incarnation
        delay = (self.params.base_latency_s
                 + size_mb / self.params.bandwidth_mb_s
                 + self._rng.expovariate(1.0 / self.params.jitter_mean_s))
        self.messages_sent += 1
        self.mb_sent += size_mb
        message = Message(src, dst, port, payload, size_mb, sent_at=self._sim.now)
        self._sim.call_after(delay, self._deliver, message, incarnation)

    def _deliver(self, message: Message, incarnation: int) -> None:
        target = self._nodes.get(message.dst)
        if target is None or not target.alive:
            return
        if target.incarnation != incarnation:
            return  # node restarted while the message was in flight
        if (message.src, message.dst) in self._blocked:
            return
        self.messages_delivered += 1
        target.dispatch(message.port, message.payload, message.src)
