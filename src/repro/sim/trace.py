"""Structured event tracing for simulations.

A :class:`Tracer` attached to a simulator (``sim.tracer = Tracer(sim)``)
collects timestamped, categorized events from instrumented components:
node crashes and restarts, coordinator changes, consensus decisions,
checkpoints, recoveries, proxy failovers.  Emission is a no-op when no
tracer is attached, so production runs pay nothing.

Use it to debug an experiment::

    tracer = Tracer(sim)
    sim.tracer = tracer
    ...run...
    for event in tracer.select("node"):
        print(event)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str
    source: str
    fields: tuple  # sorted (key, value) pairs

    def __getitem__(self, key: str) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def __repr__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"[{self.time:10.4f}] {self.category:<12} {self.source}: {details}"


class Tracer:
    """Collects events; optional category filter and live listeners."""

    def __init__(self, sim, categories: Optional[List[str]] = None,
                 max_events: int = 1_000_000):
        self._sim = sim
        self._categories = set(categories) if categories else None
        self._max_events = max_events
        self.events: List[TraceEvent] = []
        self._listeners: List[Callable[[TraceEvent], None]] = []
        self.dropped = 0

    def emit(self, category: str, source: str, **fields: Any) -> None:
        if self._categories is not None and category not in self._categories:
            return
        if len(self.events) >= self._max_events:
            self.dropped += 1
            return
        event = TraceEvent(self._sim.now, category, source,
                           tuple(sorted(fields.items())))
        self.events.append(event)
        for listener in self._listeners:
            listener(event)

    def on_event(self, fn: Callable[[TraceEvent], None]) -> None:
        self._listeners.append(fn)

    def select(self, category: Optional[str] = None,
               source: Optional[str] = None) -> List[TraceEvent]:
        return [event for event in self.events
                if (category is None or event.category == category)
                and (source is None or event.source == source)]

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.category] = totals.get(event.category, 0) + 1
        return totals

    def field_counts(self, category: str, key: str = "event") -> Dict[Any, int]:
        """Histogram of one field's values within a category.

        E.g. ``tracer.field_counts("nemesis")`` returns
        ``{"dropped": 12, "duplicated": 3, "delayed": 7}``."""
        totals: Dict[Any, int] = {}
        for event in self.select(category):
            try:
                value = event[key]
            except KeyError:
                continue
            totals[value] = totals.get(value, 0) + 1
        return totals


def emit(sim, category: str, source: str, **fields: Any) -> None:
    """Module-level helper: emit iff a tracer is attached to ``sim``."""
    tracer = getattr(sim, "tracer", None)
    if tracer is not None:
        tracer.emit(category, source, **fields)
