"""Deterministic, named random streams.

Every stochastic component (network jitter, RBE think times, workload
transitions, fault targets, TPC-W population) draws from its own named
stream forked from a single experiment seed.  Forking is stable across runs
and platforms (it hashes names with SHA-256 rather than Python's salted
``hash``), so an experiment is reproducible bit-for-bit from its seed while
components remain statistically independent.
"""

from __future__ import annotations

import hashlib
import random


class SeedTree:
    """A hierarchical seed: ``fork(name)`` derives an independent subtree."""

    def __init__(self, seed: int):
        self.seed = int(seed)

    def fork(self, name: str) -> "SeedTree":
        """Derive a child seed tree identified by ``name``."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        return SeedTree(int.from_bytes(digest[:8], "big"))

    def random(self) -> random.Random:
        """A fresh ``random.Random`` seeded from this node of the tree."""
        return random.Random(self.seed)

    def fork_random(self, name: str) -> random.Random:
        """Shorthand for ``fork(name).random()``."""
        return self.fork(name).random()

    def __repr__(self) -> str:
        return f"SeedTree({self.seed})"
