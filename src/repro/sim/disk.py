"""Stable storage: a local disk with fsync semantics and group commit.

The paper's replicas write Paxos state and checkpoints to a local 7200-rpm
disk; recovery time is dominated by reading the checkpoint back.  This model
captures the two costs that matter:

* a *synchronous-write* latency floor per fsync (seek + rotation + flush),
  amortized by group commit in :class:`WriteAheadLog`;
* sequential bandwidth for bulk reads/writes (checkpoints, log suffixes).

Durability semantics: a write is durable only once its completion event has
fired.  A node crash drops all queued and in-flight operations -- their data
is lost, exactly like a power cut before fsync returns.  Durable contents
survive crashes because :class:`Disk` objects outlive their node's volatile
state.

Storage faults: a :class:`StorageNemesis` (one per cluster, mirroring the
network :class:`~repro.sim.network.Nemesis`) can make a disk misbehave in
four seed-deterministic ways --

* **torn writes** -- a crash mid-write leaves a partially-persisted record
  (a prefix of the group-commit batch plus one damaged frame) instead of
  atomically dropping the whole operation;
* **latent corruption** -- a stored record is silently damaged at a
  scheduled instant and only discovered on read-back (scrub);
* **fsync lies** -- during a write-cache window, completions reported as
  durable are rolled back by the next crash (the drive's dirty-cache
  counter, ``unsafe_shutdowns``, records *that* something was lost, never
  *what* -- exactly the SMART-level signal real drives give);
* **fail-slow** -- latency/bandwidth degraded by a multiplier over a
  window: the gray failure a binary failure detector cannot see.

With no nemesis attached, none of these paths draw randomness, emit traces,
or change timing: runs are bit-for-bit identical to a build without the
feature.  Log entries are CRC-framed (:class:`LogFrame`) unconditionally --
framing is pure bookkeeping with no simulated cost, and gives recovery-time
scrub something to verify.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.core import Event, Simulator
from repro.sim.resource import ServiceStation
from repro.sim.rng import SeedTree
from repro.sim.trace import emit as trace_emit


@dataclass(frozen=True)
class DiskParams:
    """Calibration constants for a single disk.

    Defaults approximate the paper's 40 GB 7200-rpm disks: ~8 ms for a small
    synchronous write (seek + rotation, no volatile write cache for
    durability) and a few tens of MB/s sequential transfer.
    """

    sync_write_latency_s: float = 0.008
    write_bandwidth_mb_s: float = 40.0
    read_latency_s: float = 0.004
    read_bandwidth_mb_s: float = 45.0


def frame_crc(seq: int, entry: Any) -> int:
    """Checksum for one log frame.

    Computed over the entry's repr, which is stable for the lifetime of the
    stored object -- the only window in which it is ever rechecked.
    """
    return zlib.crc32(repr((seq, entry)).encode("utf-8", "replace"))


@dataclass(frozen=True)
class LogFrame:
    """One CRC-framed write-ahead-log record.

    ``seq`` is the append sequence number (monotone within an incarnation),
    ``entry`` the payload, ``crc`` the checksum written alongside it.  A
    torn or corrupted frame fails :meth:`intact` and is dropped -- with its
    entire suffix -- by the recovery-time scrub.
    """

    seq: int
    entry: Any
    crc: int

    def intact(self) -> bool:
        return self.crc == frame_crc(self.seq, self.entry)


@dataclass(frozen=True)
class CorruptObject:
    """Sentinel stored in place of a payload damaged by the nemesis.

    Readers that scrub (checkpoint loading) must treat a value of this type
    as unreadable -- the simulated analogue of a failed payload checksum.
    """

    key: str


@dataclass(frozen=True)
class StorageFault:
    """One scheduled storage misbehaviour on one disk.

    ``kind`` is one of ``torn`` / ``fsynclie`` / ``failslow`` (windowed; the
    point-event ``corrupt`` is scheduled directly on the nemesis and never
    becomes a window).  ``end`` defaults to open-ended.  ``p`` is the
    probability a crash inside a ``torn`` window tears the in-flight write;
    ``slow_factor`` multiplies disk op cost inside a ``failslow`` window.
    """

    kind: str
    disk: str
    start: float
    end: float = math.inf
    p: float = 1.0
    slow_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in ("torn", "fsynclie", "failslow"):
            raise ValueError(f"unknown storage fault kind {self.kind!r}")
        if not math.isfinite(self.start) or self.start < 0:
            raise ValueError(f"storage fault start {self.start!r} must be a "
                             "finite non-negative time")
        if math.isnan(self.end) or self.end <= self.start:
            raise ValueError(f"storage fault window [{self.start}, {self.end}) "
                             "is empty")
        if not 0.0 < self.p <= 1.0:
            raise ValueError(f"torn-write probability {self.p!r} not in (0, 1]")
        if not self.slow_factor >= 1.0:
            raise ValueError(f"fail-slow factor {self.slow_factor!r} must "
                             "be >= 1.0")

    def matches(self, disk: str, now: float) -> bool:
        return disk == self.disk and self.start <= now < self.end


class StorageNemesis:
    """Seed-deterministic storage fault injector for a cluster's disks.

    One instance serves every disk (mirroring the network nemesis): disks
    are registered with :meth:`attach`, faults arrive as windows
    (:class:`StorageFault`) or scheduled corruption instants, and every
    random draw happens only when a matching window is active -- so two
    runs with the same seed and schedule inject identically, and a run
    whose windows never match one with no nemesis at all.
    """

    def __init__(self, sim: Simulator, seed: Optional[SeedTree] = None):
        self._sim = sim
        self._rng = (seed or SeedTree(0)).fork_random("storage-nemesis")
        self._disks: Dict[str, Disk] = {}
        self.windows: List[StorageFault] = []
        # Per-disk stack of undo closures for completions acknowledged
        # during an fsync-lie window; dropped (made truly durable) when the
        # window closes, replayed in reverse by a crash inside it.
        self._write_cache: Dict[str, List[Callable[[], None]]] = {}
        self.counters: Dict[str, float] = {
            "torn_writes": 0,        # crashes that tore an in-flight write
            "corrupted_frames": 0,   # log frames damaged in place
            "corrupted_objects": 0,  # stored objects damaged in place
            "lied_writes": 0,        # completions acked from the write cache
            "revoked_writes": 0,     # lied completions rolled back by a crash
            "slow_ops": 0,           # disk ops stretched by a fail-slow window
            # Repair side (incremented by the recovery scrub in
            # repro.treplica.runtime, mirrored to obs counters there):
            "frames_scrubbed": 0,    # CRC frames verified at boot
            "frames_dropped": 0,     # torn/corrupt/revoked suffix frames
            "suffix_truncations": 0,  # scrubs that had to truncate the log
            "checkpoint_discards": 0,  # unreadable checkpoint slots deleted
            "peer_repairs": 0,       # checkpoint transfers replacing damage
            "repair_mb": 0.0,        # state re-fetched from peers
            "rejoin_fences": 0,      # acceptor fences installed after amnesia
        }

    def count(self, name: str, amount: float = 1) -> None:
        """Bump one audit counter (the repair path reports through this)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, disk: "Disk") -> None:
        """Put ``disk`` under this nemesis's control."""
        disk.nemesis = self
        self._disks[disk.name] = disk

    def add_window(self, fault: StorageFault) -> None:
        """Install a torn / fsynclie / failslow window."""
        self.windows.append(fault)
        if fault.kind == "fsynclie" and math.isfinite(fault.end):
            # When the lying cache window closes, the drive flushes: every
            # completion acked during the window becomes truly durable.
            self._sim.call_at(fault.end, self._flush_write_cache, fault.disk)

    def schedule_corruption(self, at: float, disk: str) -> None:
        """Silently damage one scrubbed durable record on ``disk`` at ``at``."""
        if not math.isfinite(at) or at < 0:
            raise ValueError(f"corruption time {at!r} must be a finite "
                             "non-negative time")
        self._sim.call_at(at, self._corrupt, disk)

    # ------------------------------------------------------------------
    # consultation from the disk layer
    # ------------------------------------------------------------------
    def _active(self, kind: str, disk: str) -> List[StorageFault]:
        now = self._sim.now
        return [w for w in self.windows
                if w.kind == kind and w.matches(disk, now)]

    def slow_factor(self, disk: str) -> float:
        """Cost multiplier for a disk op starting now (1.0 = healthy)."""
        factor = 1.0
        for window in self._active("failslow", disk):
            factor *= window.slow_factor
        return factor

    def count_slow_op(self) -> None:
        self.counters["slow_ops"] += 1

    def torn_fate(self, disk: str) -> bool:
        """Roll whether a crash right now tears ``disk``'s in-flight write."""
        for window in self._active("torn", disk):
            if window.p >= 1.0 or self._rng.random() < window.p:
                self.counters["torn_writes"] += 1
                return True
        return False

    def tear_point(self, group_size: int) -> int:
        """How many records of a torn group survived intact (0..n-1)."""
        return self._rng.randrange(group_size)

    def write_completed(self, disk: "Disk", undo: Callable[[], None]) -> None:
        """Register a durable-effect commit; capture it if the cache lies."""
        if self._active("fsynclie", disk.name):
            self._write_cache.setdefault(disk.name, []).append(undo)
            self.counters["lied_writes"] += 1

    # ------------------------------------------------------------------
    # fault delivery
    # ------------------------------------------------------------------
    def _flush_write_cache(self, disk_name: str) -> None:
        if self._active("fsynclie", disk_name):
            return  # another lying window still covers this disk
        self._write_cache.pop(disk_name, None)

    def on_crash(self, disk: "Disk") -> None:
        """Crash-time hook: lose everything the write cache lied about."""
        undos = self._write_cache.pop(disk.name, None)
        if not undos:
            return
        for undo in reversed(undos):
            undo()
        self.counters["revoked_writes"] += len(undos)
        disk.unsafe_shutdowns += 1
        disk.lost_write_count += len(undos)
        disk.dirty = True
        trace_emit(self._sim, "storage", disk.name,
                   event="fsynclie_lost", writes=len(undos))

    def _corrupt(self, disk_name: str) -> None:
        disk = self._disks.get(disk_name)
        if disk is None:
            return
        # Restrict victims to records the durability layer actually scrubs:
        # framed WAL lists and checkpoint slots.  Damaging anything else
        # would model a fault the paper's stack never reads back.
        frames_victims = sorted(
            key for key, (value, _size) in disk._store.items()
            if key.startswith("wal:") and isinstance(value, list) and value)
        object_victims = sorted(
            key for key, (value, _size) in disk._store.items()
            if key.startswith("treplica:checkpoint")
            and not isinstance(value, CorruptObject))
        victims = frames_victims + object_victims
        if not victims:
            return
        key = victims[self._rng.randrange(len(victims))]
        if key in frames_victims:
            frames = disk._store[key][0]
            index = self._rng.randrange(len(frames))
            frame = frames[index]
            frames[index] = LogFrame(frame.seq, frame.entry,
                                     frame.crc ^ 0xFFFFFFFF)
            self.counters["corrupted_frames"] += 1
            trace_emit(self._sim, "storage", disk_name,
                       event="corrupted", key=key, frame=index)
        else:
            _value, size_mb = disk._store[key]
            disk._store[key] = (CorruptObject(key), size_mb)
            self.counters["corrupted_objects"] += 1
            trace_emit(self._sim, "storage", disk_name,
                       event="corrupted", key=key)


class Disk:
    """A FIFO disk shared by everything on one node.

    All operations serialize through one :class:`ServiceStation`, so a bulk
    checkpoint read naturally contends with concurrent log writes -- the
    effect that shapes the paper's recovery times (Figure 6).
    """

    def __init__(self, sim: Simulator, params: Optional[DiskParams] = None,
                 name: str = "disk"):
        self._sim = sim
        self.params = params or DiskParams()
        self.name = name
        self._spans = getattr(sim, "spans", None)
        self._station = ServiceStation(sim, name=f"{name}-io")
        self._store: Dict[str, Tuple[Any, float]] = {}
        self.bytes_written_mb = 0.0
        self.bytes_read_mb = 0.0
        # Storage fault plumbing; all None/zero and never consulted unless
        # a StorageNemesis attaches itself.
        self.nemesis: Optional[StorageNemesis] = None
        self._inflight_objects: List[Tuple[str, Any, float]] = []
        self.unsafe_shutdowns = 0     # crashes that lost acked writes
        self.lost_write_count = 0     # acked writes revoked across all crashes
        self.dirty = False            # set by a lossy crash, cleared by scrub

    @property
    def queue_length(self) -> int:
        """Operations waiting for the disk head (observability gauge)."""
        return self._station.queue_length

    # ------------------------------------------------------------------
    # raw timed operations
    # ------------------------------------------------------------------
    def write(self, size_mb: float) -> Event:
        """A synchronous (durable-on-completion) write of ``size_mb``."""
        cost = (self.params.sync_write_latency_s
                + size_mb / self.params.write_bandwidth_mb_s)
        cost = self._degraded(cost)
        done = self._station.request(cost)
        # Byte counters account completed transfers only: an op dropped by
        # a crash (station reset) never moved data to the platter.
        done.add_callback(lambda _event, mb=size_mb: self._book("write", mb))
        self._trace_op("write", size_mb, done)
        return done

    def read(self, size_mb: float) -> Event:
        """A sequential read of ``size_mb``."""
        cost = (self.params.read_latency_s
                + size_mb / self.params.read_bandwidth_mb_s)
        cost = self._degraded(cost)
        done = self._station.request(cost)
        done.add_callback(lambda _event, mb=size_mb: self._book("read", mb))
        self._trace_op("read", size_mb, done)
        return done

    def _degraded(self, cost: float) -> float:
        if self.nemesis is None:
            return cost
        factor = self.nemesis.slow_factor(self.name)
        if factor == 1.0:
            return cost
        self.nemesis.count_slow_op()
        return cost * factor

    def _book(self, op: str, size_mb: float) -> None:
        if op == "write":
            self.bytes_written_mb += size_mb
        else:
            self.bytes_read_mb += size_mb

    def _trace_op(self, op: str, size_mb: float, done: Event) -> None:
        # Span covers queueing behind the disk head plus the transfer
        # itself; an op lost to a crash (station reset) never finishes
        # and its open span is skipped by the exporters.
        tracer = self._spans
        if tracer is None:
            return
        span = tracer.begin("disk", self.name, op=op,
                            size_mb=round(size_mb, 6))
        done.add_callback(lambda _event: tracer.finish(span))

    # ------------------------------------------------------------------
    # durable key-value segments (checkpoints, metadata)
    # ------------------------------------------------------------------
    def write_object(self, key: str, value: Any, size_mb: float) -> Event:
        """Write ``value`` under ``key``; durable once the event fires."""
        done = self._sim.event()
        token = (key, value, size_mb)
        self._inflight_objects.append(token)

        def commit(_event: Event) -> None:
            self._inflight_objects.remove(token)
            prior = self._store.get(key)
            self._store[key] = (value, size_mb)
            if self.nemesis is not None:
                self.nemesis.write_completed(
                    self, lambda: self._restore(key, prior))
            done.succeed(value)

        self.write(size_mb).add_callback(commit)
        return done

    def _restore(self, key: str, prior: Optional[Tuple[Any, float]]) -> None:
        # Undo for a lied-about object write: put back what a real fsync
        # would have left on the platter.
        if prior is None:
            self._store.pop(key, None)
        else:
            self._store[key] = prior

    def read_object(self, key: str) -> Event:
        """Timed read of a stored object; fails if the key is absent."""
        done = self._sim.event()
        if key not in self._store:
            done.fail(KeyError(key))
            return done
        value, size_mb = self._store[key]

        def complete(_event: Event) -> None:
            done.succeed(value)

        self.read(size_mb).add_callback(complete)
        return done

    def peek(self, key: str, default: Any = None) -> Any:
        """Zero-cost metadata access (used by boot code, not data paths)."""
        entry = self._store.get(key)
        return default if entry is None else entry[0]

    def contains(self, key: str) -> bool:
        return key in self._store

    def delete(self, key: str) -> None:
        self._store.pop(key, None)

    def persistent(self, key: str, factory) -> Any:
        """A mutable object that lives in the durable store.

        Used by :class:`WriteAheadLog` to keep its committed entries across
        crash/restart cycles where the wrapping Python object is recreated.
        Mutations are only made from commit callbacks, whose timing was
        already paid through :meth:`write`.
        """
        if key not in self._store:
            self._store[key] = (factory(), 0.0)
        return self._store[key][0]

    def stored_size_mb(self, key: str) -> float:
        entry = self._store.get(key)
        return 0.0 if entry is None else entry[1]

    # ------------------------------------------------------------------
    # crash semantics
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Drop queued and in-flight operations; durable contents survive."""
        self._station.reset()
        pending, self._inflight_objects = self._inflight_objects, []
        if self.nemesis is None:
            return
        for key, _value, size_mb in pending:
            # A torn object write leaves an unreadable payload under the
            # key instead of atomically not happening.
            if self.nemesis.torn_fate(self.name):
                self._store[key] = (CorruptObject(key), size_mb)
                trace_emit(self._sim, "storage", self.name,
                           event="torn_object", key=key)
        self.nemesis.on_crash(self)


class WriteAheadLog:
    """Append-only durable log with group commit.

    Entries appended while a disk write is in flight are coalesced into the
    next write, so one fsync amortizes over a burst -- the batching that
    keeps the shopping-profile speedup close to browsing in Figure 3.

    Durable records are stored as CRC-framed :class:`LogFrame` objects;
    ``entries()`` exposes the unwrapped durable prefix for recovery,
    :meth:`truncate_below` discards entries superseded by a checkpoint, and
    :meth:`scrub` verifies every frame and truncates a damaged suffix --
    the detection half of torn-write / corruption recovery.
    """

    def __init__(self, sim: Simulator, disk: Disk, name: str = "wal",
                 entry_overhead_mb: float = 0.0002, node=None):
        self._sim = sim
        self._disk = disk
        self.name = name
        self._entry_overhead_mb = entry_overhead_mb
        self._pending: List[Tuple[Any, float, Event]] = []
        self._flushing = False
        self._inflight_group: Optional[List[Tuple[Any, float, Event]]] = None
        # The durable entry list lives in the disk store, so a log object
        # recreated after a reboot sees everything that was committed.
        self._durable: List[LogFrame] = disk.persistent(f"wal:{name}", list)
        self._seq = (self._durable[-1].seq + 1) if self._durable else 0
        self.flush_count = 0
        self.appended_count = 0
        if node is not None:
            node.add_volatile_crash_hook(self.on_crash)

    def append(self, entry: Any, size_mb: float = 0.0) -> Event:
        """Append ``entry``; the event fires once the entry is durable."""
        done = self._sim.event()
        self._pending.append((entry, size_mb + self._entry_overhead_mb, done))
        self.appended_count += 1
        if not self._flushing:
            self._flush()
        return done

    def entries(self) -> List[Any]:
        """The durable entries, in append order (crash-surviving view)."""
        return [frame.entry for frame in self._durable]

    def truncate_below(self, keep_predicate) -> int:
        """Keep only entries where ``keep_predicate(entry)``; return removed count."""
        before = len(self._durable)
        self._durable[:] = [f for f in self._durable if keep_predicate(f.entry)]
        return before - len(self._durable)

    def scrub(self) -> Tuple[int, int]:
        """Verify every frame; truncate at the first damaged one.

        A torn or corrupted frame invalidates everything after it -- the
        suffix may depend on state the damaged record carried -- so the log
        is cut at the first CRC mismatch, and the lost suffix re-fetched
        through the ordinary catch-up path.  Returns ``(intact, dropped)``
        frame counts.  Pure verification: no simulated time passes (scrub
        piggybacks on the recovery reads the boot path already pays for).
        """
        for index, frame in enumerate(self._durable):
            if not (isinstance(frame, LogFrame) and frame.intact()):
                dropped = len(self._durable) - index
                del self._durable[index:]
                return index, dropped
        return len(self._durable), 0

    def on_crash(self) -> None:
        """Lose the un-flushed tail; keep the durable prefix.

        Inside a torn-write window the loss is not atomic: a prefix of the
        in-flight group commits intact, then one partially-written frame
        with a bad CRC -- what a power cut mid-sector leaves behind.
        """
        group, self._inflight_group = self._inflight_group, None
        nemesis = self._disk.nemesis
        if (nemesis is not None and group
                and nemesis.torn_fate(self._disk.name)):
            kept = nemesis.tear_point(len(group))
            for entry, _size, _done in group[:kept]:
                self._durable.append(self._frame(entry))
            torn_entry = group[kept][0]
            seq = self._seq
            self._seq += 1
            self._durable.append(LogFrame(
                seq, torn_entry, frame_crc(seq, torn_entry) ^ 0xFFFFFFFF))
            trace_emit(self._sim, "storage", self._disk.name,
                       event="torn_write", name=self.name, kept=kept)
        self._pending.clear()
        self._flushing = False

    # ------------------------------------------------------------------
    def _frame(self, entry: Any) -> LogFrame:
        seq = self._seq
        self._seq += 1
        return LogFrame(seq, entry, frame_crc(seq, entry))

    def _flush(self) -> None:
        if not self._pending:
            self._flushing = False
            return
        self._flushing = True
        group, self._pending = self._pending, []
        self._inflight_group = group
        total_mb = sum(size for _entry, size, _done in group)
        self.flush_count += 1

        def committed(_event: Event) -> None:
            self._inflight_group = None
            frames: List[LogFrame] = []
            for entry, _size, done in group:
                frame = self._frame(entry)
                frames.append(frame)
                self._durable.append(frame)
                if not done.triggered:
                    done.succeed(None)
            nemesis = self._disk.nemesis
            if nemesis is not None:
                nemesis.write_completed(
                    self._disk, lambda: self._revoke(frames))
            self._flush()

        self._disk.write(total_mb).add_callback(committed)

    def _revoke(self, frames: List[LogFrame]) -> None:
        # Undo for a lied-about group commit: the frames evaporate, as if
        # the fsync had never been acknowledged.  Frames already removed by
        # a checkpoint truncation are simply gone either way.
        for frame in frames:
            try:
                self._durable.remove(frame)
            except ValueError:
                pass
