"""Stable storage: a local disk with fsync semantics and group commit.

The paper's replicas write Paxos state and checkpoints to a local 7200-rpm
disk; recovery time is dominated by reading the checkpoint back.  This model
captures the two costs that matter:

* a *synchronous-write* latency floor per fsync (seek + rotation + flush),
  amortized by group commit in :class:`WriteAheadLog`;
* sequential bandwidth for bulk reads/writes (checkpoints, log suffixes).

Durability semantics: a write is durable only once its completion event has
fired.  A node crash drops all queued and in-flight operations -- their data
is lost, exactly like a power cut before fsync returns.  Durable contents
survive crashes because :class:`Disk` objects outlive their node's volatile
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.core import Event, Simulator
from repro.sim.resource import ServiceStation


@dataclass(frozen=True)
class DiskParams:
    """Calibration constants for a single disk.

    Defaults approximate the paper's 40 GB 7200-rpm disks: ~8 ms for a small
    synchronous write (seek + rotation, no volatile write cache for
    durability) and a few tens of MB/s sequential transfer.
    """

    sync_write_latency_s: float = 0.008
    write_bandwidth_mb_s: float = 40.0
    read_latency_s: float = 0.004
    read_bandwidth_mb_s: float = 45.0


class Disk:
    """A FIFO disk shared by everything on one node.

    All operations serialize through one :class:`ServiceStation`, so a bulk
    checkpoint read naturally contends with concurrent log writes -- the
    effect that shapes the paper's recovery times (Figure 6).
    """

    def __init__(self, sim: Simulator, params: Optional[DiskParams] = None,
                 name: str = "disk"):
        self._sim = sim
        self.params = params or DiskParams()
        self.name = name
        self._spans = getattr(sim, "spans", None)
        self._station = ServiceStation(sim, name=f"{name}-io")
        self._store: Dict[str, Tuple[Any, float]] = {}
        self.bytes_written_mb = 0.0
        self.bytes_read_mb = 0.0

    @property
    def queue_length(self) -> int:
        """Operations waiting for the disk head (observability gauge)."""
        return self._station.queue_length

    # ------------------------------------------------------------------
    # raw timed operations
    # ------------------------------------------------------------------
    def write(self, size_mb: float) -> Event:
        """A synchronous (durable-on-completion) write of ``size_mb``."""
        cost = (self.params.sync_write_latency_s
                + size_mb / self.params.write_bandwidth_mb_s)
        self.bytes_written_mb += size_mb
        done = self._station.request(cost)
        self._trace_op("write", size_mb, done)
        return done

    def read(self, size_mb: float) -> Event:
        """A sequential read of ``size_mb``."""
        cost = (self.params.read_latency_s
                + size_mb / self.params.read_bandwidth_mb_s)
        self.bytes_read_mb += size_mb
        done = self._station.request(cost)
        self._trace_op("read", size_mb, done)
        return done

    def _trace_op(self, op: str, size_mb: float, done: Event) -> None:
        # Span covers queueing behind the disk head plus the transfer
        # itself; an op lost to a crash (station reset) never finishes
        # and its open span is skipped by the exporters.
        tracer = self._spans
        if tracer is None:
            return
        span = tracer.begin("disk", self.name, op=op,
                            size_mb=round(size_mb, 6))
        done.add_callback(lambda _event: tracer.finish(span))

    # ------------------------------------------------------------------
    # durable key-value segments (checkpoints, metadata)
    # ------------------------------------------------------------------
    def write_object(self, key: str, value: Any, size_mb: float) -> Event:
        """Write ``value`` under ``key``; durable once the event fires."""
        done = self._sim.event()

        def commit(_event: Event) -> None:
            self._store[key] = (value, size_mb)
            done.succeed(value)

        self.write(size_mb).add_callback(commit)
        return done

    def read_object(self, key: str) -> Event:
        """Timed read of a stored object; fails if the key is absent."""
        done = self._sim.event()
        if key not in self._store:
            done.fail(KeyError(key))
            return done
        value, size_mb = self._store[key]

        def complete(_event: Event) -> None:
            done.succeed(value)

        self.read(size_mb).add_callback(complete)
        return done

    def peek(self, key: str, default: Any = None) -> Any:
        """Zero-cost metadata access (used by boot code, not data paths)."""
        entry = self._store.get(key)
        return default if entry is None else entry[0]

    def contains(self, key: str) -> bool:
        return key in self._store

    def delete(self, key: str) -> None:
        self._store.pop(key, None)

    def persistent(self, key: str, factory) -> Any:
        """A mutable object that lives in the durable store.

        Used by :class:`WriteAheadLog` to keep its committed entries across
        crash/restart cycles where the wrapping Python object is recreated.
        Mutations are only made from commit callbacks, whose timing was
        already paid through :meth:`write`.
        """
        if key not in self._store:
            self._store[key] = (factory(), 0.0)
        return self._store[key][0]

    def stored_size_mb(self, key: str) -> float:
        entry = self._store.get(key)
        return 0.0 if entry is None else entry[1]

    # ------------------------------------------------------------------
    # crash semantics
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Drop queued and in-flight operations; durable contents survive."""
        self._station.reset()


class WriteAheadLog:
    """Append-only durable log with group commit.

    Entries appended while a disk write is in flight are coalesced into the
    next write, so one fsync amortizes over a burst -- the batching that
    keeps the shopping-profile speedup close to browsing in Figure 3.

    The log stores ``(sequence, entry)`` pairs; ``entries()`` exposes the
    durable prefix for recovery, and :meth:`truncate_below` discards entries
    superseded by a checkpoint.
    """

    def __init__(self, sim: Simulator, disk: Disk, name: str = "wal",
                 entry_overhead_mb: float = 0.0002, node=None):
        self._sim = sim
        self._disk = disk
        self.name = name
        self._entry_overhead_mb = entry_overhead_mb
        self._pending: List[Tuple[Any, float, Event]] = []
        self._flushing = False
        # The durable entry list lives in the disk store, so a log object
        # recreated after a reboot sees everything that was committed.
        self._durable: List[Any] = disk.persistent(f"wal:{name}", list)
        self.flush_count = 0
        self.appended_count = 0
        if node is not None:
            node.add_volatile_crash_hook(self.on_crash)

    def append(self, entry: Any, size_mb: float = 0.0) -> Event:
        """Append ``entry``; the event fires once the entry is durable."""
        done = self._sim.event()
        self._pending.append((entry, size_mb + self._entry_overhead_mb, done))
        self.appended_count += 1
        if not self._flushing:
            self._flush()
        return done

    def entries(self) -> List[Any]:
        """The durable entries, in append order (crash-surviving view)."""
        return list(self._durable)

    def truncate_below(self, keep_predicate) -> int:
        """Keep only entries where ``keep_predicate(entry)``; return removed count."""
        before = len(self._durable)
        self._durable[:] = [e for e in self._durable if keep_predicate(e)]
        return before - len(self._durable)

    def on_crash(self) -> None:
        """Lose the un-flushed tail; keep the durable prefix."""
        self._pending.clear()
        self._flushing = False

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if not self._pending:
            self._flushing = False
            return
        self._flushing = True
        group, self._pending = self._pending, []
        total_mb = sum(size for _entry, size, _done in group)
        self.flush_count += 1

        def committed(_event: Event) -> None:
            for entry, _size, done in group:
                self._durable.append(entry)
                if not done.triggered:
                    done.succeed(None)
            self._flush()

        self._disk.write(total_mb).add_callback(committed)
