"""A Chubby-style replicated lock service on Treplica.

Semantics (a faithful miniature of Burrows' lock service, Table 7 of the
paper):

* **sessions** with leases: a client owns a session it must keep alive;
  when a session's lease lapses, an expiry sweep releases everything it
  held;
* **advisory locks** in *exclusive* or *shared* mode, acquired/released
  within a session;
* **sequencers**: every successful exclusive acquisition returns a
  monotonically increasing token ``(lock generation)`` that downstream
  services can use to fence stale lock holders.

Determinism discipline (Section 4 of the paper): every clock reading --
lease deadlines, expiry sweeps -- is taken by the *client wrapper* before
the action is created and travels as an argument, so all replicas agree
bit-for-bit on lease arithmetic.

All replication, failover, and recovery concerns are Treplica's: the
service state is an :class:`~repro.treplica.application.InMemoryApplication`
and every mutation is a deterministic :class:`~repro.treplica.actions.Action`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.treplica.actions import Action
from repro.treplica.application import InMemoryApplication

EXCLUSIVE = "exclusive"
SHARED = "shared"


class LockServiceState:
    """The replicated state: sessions, locks, and sequencer generations."""

    def __init__(self) -> None:
        # session_id -> lease deadline (absolute, from action arguments)
        self.sessions: Dict[str, float] = {}
        # lock name -> (mode, holders)  -- holders is a set of session ids
        self.locks: Dict[str, Tuple[str, Set[str]]] = {}
        # lock name -> generation counter (the Chubby sequencer)
        self.generations: Dict[str, int] = {}

    # -- pure queries (used by the facade's local reads) ----------------
    def holder_of(self, name: str) -> Optional[Set[str]]:
        entry = self.locks.get(name)
        return None if entry is None else set(entry[1])

    def is_held(self, name: str) -> bool:
        return name in self.locks and bool(self.locks[name][1])

    def session_alive(self, session_id: str, now: float) -> bool:
        deadline = self.sessions.get(session_id)
        return deadline is not None and deadline >= now


class LockServiceApp(InMemoryApplication):
    """Treplica application wrapper for the lock service."""

    def __init__(self, nominal_size_mb: float = 4.0):
        super().__init__(state=LockServiceState(),
                         nominal_size_mb=nominal_size_mb)


# ======================================================================
# deterministic actions
# ======================================================================
class CreateSession(Action):
    cpu_cost_s = 0.0001
    size_mb = 0.0002

    def __init__(self, session_id: str, now: float, ttl_s: float):
        self.session_id = session_id
        self.now = now
        self.ttl_s = ttl_s

    def apply(self, app) -> bool:
        state = app.state
        if self.session_id in state.sessions:
            return False
        state.sessions[self.session_id] = self.now + self.ttl_s
        return True


class KeepAlive(Action):
    cpu_cost_s = 0.00005
    size_mb = 0.0001

    def __init__(self, session_id: str, now: float, ttl_s: float):
        self.session_id = session_id
        self.now = now
        self.ttl_s = ttl_s

    def apply(self, app) -> bool:
        state = app.state
        if self.session_id not in state.sessions:
            return False
        state.sessions[self.session_id] = max(
            state.sessions[self.session_id], self.now + self.ttl_s)
        return True


class Acquire(Action):
    """Try-acquire: returns a sequencer on success, None on conflict."""

    cpu_cost_s = 0.0001
    size_mb = 0.0002

    def __init__(self, session_id: str, name: str, mode: str, now: float):
        if mode not in (EXCLUSIVE, SHARED):
            raise ValueError(f"unknown lock mode: {mode!r}")
        self.session_id = session_id
        self.name = name
        self.mode = mode
        self.now = now

    def apply(self, app) -> Optional[int]:
        state = app.state
        if not state.session_alive(self.session_id, self.now):
            return None
        entry = state.locks.get(self.name)
        if entry is not None and entry[1]:
            mode, holders = entry
            if self.session_id in holders and mode == self.mode:
                return state.generations.get(self.name, 0)  # re-entrant
            if self.mode == SHARED and mode == SHARED:
                holders.add(self.session_id)
                return state.generations.get(self.name, 0)
            return None  # conflict
        generation = state.generations.get(self.name, 0) + 1
        state.generations[self.name] = generation
        state.locks[self.name] = (self.mode, {self.session_id})
        return generation


class Release(Action):
    cpu_cost_s = 0.00008
    size_mb = 0.0002

    def __init__(self, session_id: str, name: str):
        self.session_id = session_id
        self.name = name

    def apply(self, app) -> bool:
        state = app.state
        entry = state.locks.get(self.name)
        if entry is None or self.session_id not in entry[1]:
            return False
        entry[1].discard(self.session_id)
        if not entry[1]:
            del state.locks[self.name]
        return True


class ExpireSessions(Action):
    """Lease sweep: drop dead sessions and everything they held.

    Any replica's client wrapper may submit sweeps; they are idempotent
    and totally ordered, so all replicas expire the same sessions at the
    same point in the order.
    """

    cpu_cost_s = 0.0002
    size_mb = 0.0001

    def __init__(self, now: float):
        self.now = now

    def apply(self, app) -> List[str]:
        state = app.state
        expired = sorted(session for session, deadline
                         in state.sessions.items() if deadline < self.now)
        for session in expired:
            del state.sessions[session]
            for name in [n for n, (_m, holders) in state.locks.items()
                         if session in holders]:
                _mode, holders = state.locks[name]
                holders.discard(session)
                if not holders:
                    del state.locks[name]
        return expired


# ======================================================================
# the client-side facade
# ======================================================================
class LockClient:
    """Per-replica client wrapper (the lock service's 'facade').

    All methods are generators (they block on total ordering):
    ``granted = yield from client.acquire("master", EXCLUSIVE)``.
    Non-determinism (clock reads) is resolved here, never inside actions.
    """

    def __init__(self, runtime, session_id: str, ttl_s: float = 10.0):
        self._runtime = runtime
        self._sim = runtime.sim
        self.session_id = session_id
        self.ttl_s = ttl_s

    # -- session lifecycle ----------------------------------------------
    def open_session(self):
        action = CreateSession(self.session_id, self._sim.now, self.ttl_s)
        return (yield from self._runtime.execute(action))

    def keep_alive(self):
        action = KeepAlive(self.session_id, self._sim.now, self.ttl_s)
        return (yield from self._runtime.execute(action))

    def keep_alive_loop(self, interval_s: Optional[float] = None):
        """Background process body: refresh the lease forever."""
        interval = interval_s if interval_s is not None else self.ttl_s / 3.0
        while True:
            yield from self.keep_alive()
            yield self._sim.timeout(interval)

    # -- locks ------------------------------------------------------------
    def acquire(self, name: str, mode: str = EXCLUSIVE):
        """Try-acquire; returns the sequencer (int) or None on conflict."""
        action = Acquire(self.session_id, name, mode, self._sim.now)
        return (yield from self._runtime.execute(action))

    def acquire_blocking(self, name: str, mode: str = EXCLUSIVE,
                         retry_s: float = 0.5):
        """Acquire, retrying until granted (lock-wait semantics)."""
        while True:
            granted = yield from self.acquire(name, mode)
            if granted is not None:
                return granted
            yield self._sim.timeout(retry_s)

    def release(self, name: str):
        return (yield from self._runtime.execute(
            Release(self.session_id, name)))

    def sweep_expired(self):
        """Submit a lease sweep (typically from a housekeeping process)."""
        return (yield from self._runtime.execute(
            ExpireSessions(self._sim.now)))

    # -- local reads -------------------------------------------------------
    def holders(self, name: str) -> Optional[Set[str]]:
        return self._runtime.read(lambda app: app.state.holder_of(name))

    def generation(self, name: str) -> int:
        return self._runtime.read(
            lambda app: app.state.generations.get(name, 0))
