"""Complete applications built on Treplica (beyond the bookstore).

The paper's Table 7 situates Treplica among systems like Chubby that use
Paxos-based state-machine replication for critical services.
:mod:`repro.apps.lockservice` is a Chubby-style distributed lock service
built on the same middleware as RobustStore -- a second, structurally
different application demonstrating the retrofit recipe of Section 4:
deterministic actions, non-determinism passed as arguments, all
replication/recovery concerns delegated to Treplica.
"""

from repro.apps.lockservice import (
    LockClient,
    LockServiceApp,
    LockServiceState,
)

__all__ = ["LockClient", "LockServiceApp", "LockServiceState"]
