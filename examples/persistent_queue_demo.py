#!/usr/bin/env python3
"""The asynchronous persistent queue -- Treplica's other interface.

Section 2 of the paper: the queue is a totally ordered collection of
objects with asynchronous ``enqueue`` and blocking ``dequeue``; a replica
can crash, recover, and *rebind* to its queue certain that it missed
nothing.  This demo builds a tiny replicated job dispatcher on the raw
queue (no state machine layer), crashes a worker, and shows the rebind.

Run:  python examples/persistent_queue_demo.py
"""

from repro.sim import Network, NetworkParams, Node, SeedTree, Simulator
from repro.treplica import PersistentQueue


def main() -> None:
    sim = Simulator()
    seed = SeedTree(99)
    network = Network(sim, NetworkParams(), seed=seed)
    nodes = [Node(sim, network, f"worker{i}") for i in range(3)]
    names = [node.name for node in nodes]

    queues = {}
    processed = {i: [] for i in range(3)}

    def bind(i):
        queue = PersistentQueue(nodes[i], names, i, seed=seed)
        queue.start()
        queues[i] = queue
        nodes[i].spawn(consumer(i, queue), name="consumer")
        return queue

    def consumer(i, queue):
        while True:
            _instance, uid, job = yield queue.dequeue()
            processed[i].append(job)

    for i in range(3):
        bind(i)

    # Producer: enqueue jobs from worker 0 (asynchronously).
    def producer():
        for k in range(8):
            queues[0].enqueue(f"job-{k}")
            yield sim.timeout(0.3)

    nodes[0].spawn(producer())
    sim.run(until=1.0)

    print(f"[t={sim.now:4.1f}s] crashing worker 2 "
          f"(it has processed {processed[2]})")
    nodes[2].crash()
    processed[2] = []  # its volatile memory is gone

    sim.run(until=3.0)
    print(f"[t={sim.now:4.1f}s] workers 0/1 processed "
          f"{len(processed[0])} jobs; rebinding worker 2 to its queue")
    nodes[2].restart()
    bind(2)

    sim.run(until=8.0)
    print(f"[t={sim.now:4.1f}s] after rebind:")
    for i in range(3):
        print(f"  worker{i}: {processed[i]}")
    assert processed[2] == processed[0], (
        "the rebound replica must replay the exact total order")
    print("worker 2 missed nothing: the queue is persistent "
          "and totally ordered.")


if __name__ == "__main__":
    main()
