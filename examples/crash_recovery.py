#!/usr/bin/env python3
"""Crash, failover, recovery -- the paper's core scenario, in miniature.

A replicated key-value store runs on five replicas.  We kill one replica
mid-traffic (the paper's "abrupt server shutdown"), keep writing through
the survivors, then reboot it and watch Treplica's recovery: the replica
loads its local checkpoint, learns the missed queue suffix from its
peers, and rejoins with identical state -- no human intervention beyond
this script's scheduled reboot.

Run:  python examples/crash_recovery.py
"""

from repro.sim import Network, NetworkParams, Node, SeedTree, Simulator
from repro.treplica import Action, InMemoryApplication, TreplicaConfig, TreplicaRuntime


class Store(InMemoryApplication):
    def __init__(self):
        super().__init__(state={}, nominal_size_mb=40.0)


class Put(Action):
    def __init__(self, key, value):
        self.key = key
        self.value = value

    def apply(self, app):
        app.state[self.key] = self.value
        return self.key


def main() -> None:
    sim = Simulator()
    seed = SeedTree(7)
    network = Network(sim, NetworkParams(), seed=seed)
    config = TreplicaConfig(checkpoint_interval_s=10.0)

    nodes = [Node(sim, network, f"replica{i}") for i in range(5)]
    names = [node.name for node in nodes]
    runtimes = {}

    def boot(index):
        runtime = TreplicaRuntime(nodes[index], names, index, Store(),
                                  config=config, seed=seed)
        runtime.start()
        runtimes[index] = runtime
        return runtime

    for i in range(5):
        boot(i)

    def writer():
        """A client hammering replica 0 with writes, forever."""
        k = 0
        while True:
            yield from runtimes[0].execute(Put(f"key{k}", k))
            k += 1
            yield sim.timeout(0.05)

    nodes[0].spawn(writer())
    sim.run(until=15.0)  # past the first periodic checkpoint

    print(f"[t={sim.now:5.1f}s] crashing replica 4 "
          f"(keys so far: {len(runtimes[0].app.state)})")
    nodes[4].crash()
    runtimes.pop(4)

    sim.run(until=30.0)
    print(f"[t={sim.now:5.1f}s] survivors kept writing "
          f"(keys now: {len(runtimes[0].app.state)}); rebooting replica 4")
    nodes[4].restart()
    recovered = boot(4)

    sim.run(until=60.0)
    assert recovered.ready, "replica 4 should have finished recovery"
    recovery_took = recovered.recovered_at - recovered.boot_started_at
    print(f"[t={sim.now:5.1f}s] replica 4 ready after "
          f"{recovery_took:.1f}s of recovery "
          f"(checkpoint load + backlog of missed writes)")
    print(f"  re-executed only {recovered.stats['executed']} actions "
          f"thanks to its checkpoint")

    sizes = {i: len(rt.read(lambda app: dict(app.state)))
             for i, rt in sorted(runtimes.items())}
    print(f"  keys per replica: {sizes}")
    assert len(set(sizes.values())) == 1, "replicas diverged!"
    sample = runtimes[4].read(lambda app: app.state.get("key100"))
    print(f"  replica 4 sees key100 = {sample}")
    print("recovered replica is byte-identical with the survivors.")


if __name__ == "__main__":
    main()
