#!/usr/bin/env python3
"""Leader election with the replicated lock service (Chubby-style).

Three workers race for the 'master' lock.  The winner leads until its
session lease lapses (we crash it without warning); the survivors then
acquire the lock with a *higher sequencer*, so any downstream service can
fence requests from the deposed leader -- the classic lock-service
pattern, running on the same Treplica middleware as RobustStore.

Run:  python examples/lock_service.py
"""

from repro.apps.lockservice import EXCLUSIVE, LockClient, LockServiceApp
from repro.sim import Network, NetworkParams, Node, SeedTree, Simulator
from repro.treplica import TreplicaRuntime


def main() -> None:
    sim = Simulator()
    seed = SeedTree(33)
    network = Network(sim, NetworkParams(), seed=seed)
    nodes = [Node(sim, network, f"worker{i}") for i in range(3)]
    names = [node.name for node in nodes]
    runtimes = [TreplicaRuntime(node, names, i, LockServiceApp(), seed=seed)
                for i, node in enumerate(nodes)]
    for runtime in runtimes:
        runtime.start()

    journal = []

    def worker(i):
        client = LockClient(runtimes[i], session_id=f"worker{i}", ttl_s=3.0)
        yield from client.open_session()
        nodes[i].spawn(client.keep_alive_loop(), name="keepalive")
        sequencer = yield from client.acquire_blocking("master", EXCLUSIVE,
                                                       retry_s=0.5)
        journal.append((sim.now, f"worker{i}", sequencer))
        print(f"[t={sim.now:6.2f}s] worker{i} became master "
              f"(sequencer {sequencer})")
        while True:  # lead until death
            yield sim.timeout(1.0)

    for i in range(3):
        nodes[i].spawn(worker(i))

    # A janitor on worker2 sweeps expired sessions periodically.
    def janitor():
        client = LockClient(runtimes[2], "janitor", ttl_s=60.0)
        while True:
            yield sim.timeout(1.0)
            expired = yield from client.sweep_expired()
            if expired:
                print(f"[t={sim.now:6.2f}s] janitor expired sessions: "
                      f"{expired}")

    nodes[2].spawn(janitor())

    sim.run(until=5.0)
    leader = journal[-1][1]
    leader_index = int(leader[-1])
    print(f"[t={sim.now:6.2f}s] crashing the master ({leader}) "
          "without warning")
    nodes[leader_index].crash()

    sim.run(until=20.0)
    assert len(journal) >= 2, "a survivor should have taken over"
    first, second = journal[0], journal[1]
    print(f"[t={sim.now:6.2f}s] {second[1]} holds the lock with sequencer "
          f"{second[2]} > {first[2]} -- stale-leader requests can be fenced")
    assert second[2] > first[2]
    assert second[1] != first[1]
    print("leadership transferred exactly once, with a fencing token.")


if __name__ == "__main__":
    main()
