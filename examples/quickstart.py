#!/usr/bin/env python3
"""Quickstart: a replicated counter on Treplica in ~60 lines.

Shows the state-machine programming interface from Section 2 of the
paper: define deterministic actions, hand your application to a
:class:`TreplicaRuntime` on each replica, call ``execute`` -- replication,
total ordering, checkpointing, and recovery are Treplica's problem.

Run:  python examples/quickstart.py
"""

from repro.sim import Network, NetworkParams, Node, SeedTree, Simulator
from repro.treplica import Action, InMemoryApplication, TreplicaRuntime


class Counter(InMemoryApplication):
    """The application: a black box holding one integer."""

    def __init__(self):
        super().__init__(state={"value": 0}, nominal_size_mb=1.0)


class Add(Action):
    """A deterministic transition: add a constant."""

    def __init__(self, amount: int):
        self.amount = amount

    def apply(self, app):
        app.state["value"] += self.amount
        return app.state["value"]


def main() -> None:
    sim = Simulator()
    seed = SeedTree(2024)
    network = Network(sim, NetworkParams(), seed=seed)

    # Three replica machines, each hosting the counter under Treplica.
    nodes = [Node(sim, network, f"replica{i}") for i in range(3)]
    names = [node.name for node in nodes]
    runtimes = [TreplicaRuntime(node, names, i, Counter(), seed=seed)
                for i, node in enumerate(nodes)]
    for runtime in runtimes:
        runtime.start()

    def client(runtime, amounts):
        """execute() blocks until the action has applied locally."""
        for amount in amounts:
            value = yield from runtime.execute(Add(amount))
            print(f"[t={sim.now:7.3f}s] {runtime.node.name} added "
                  f"{amount:+d} -> counter = {value}")

    # Concurrent clients on different replicas; Treplica totally orders them.
    nodes[0].spawn(client(runtimes[0], [1, 10]))
    nodes[1].spawn(client(runtimes[1], [100]))
    nodes[2].spawn(client(runtimes[2], [1000, 10000]))
    sim.run(until=10.0)

    values = [rt.read(lambda app: app.state["value"]) for rt in runtimes]
    print(f"final values on all replicas: {values}")
    assert values == [11111, 11111, 11111]
    print("all replicas agree. total order works.")


if __name__ == "__main__":
    main()
