#!/usr/bin/env python3
"""RobustStore end to end: the full Figure-2 deployment in one script.

Builds the complete system the paper evaluates -- five bookstore replicas
on Treplica, the probing/hashing reverse proxy, five client machines full
of remote browser emulators -- runs the TPC-W shopping workload, injects
the paper's two-overlapped-crashes faultload, and prints the
dependability report (AWIPS, PV, accuracy, recovery times, autonomy).

Run:  python examples/robuststore_demo.py
"""

from repro.harness.config import ClusterConfig, ExperimentScale
from repro.harness.experiment import Experiment
from repro.harness.report import format_series, format_table


def main() -> None:
    # A compressed timeline so the demo finishes in ~10 s of wall time
    # (run with scale=paper_scale() for the full 10-minute experiment).
    scale = ExperimentScale(name="demo", time_div=10.0, load_div=8.0,
                            entity_scale=0.005)
    config = ClusterConfig(replicas=5, num_ebs=30, profile="shopping",
                           offered_wips=1900.0, scale=scale, seed=1)

    print(f"deploying RobustStore: {config.replicas} replicas, "
          f"{config.num_rbes} emulated browsers, "
          f"~{config.num_ebs * 10} MB nominal state, "
          f"shopping workload, two overlapped crashes")
    result = Experiment.from_config(config).two_crashes().run()

    ff = result.failure_free_window()
    rec = result.recovery_window()
    print(format_table(
        "Dependability report (shopping workload, 2 crashes)",
        ["measure", "value"],
        [["failure-free AWIPS", f"{ff.awips:.1f} (CV {ff.cv:.2f})"],
         ["recovery AWIPS", f"{rec.awips:.1f} (CV {rec.cv:.2f})"],
         ["performability PV", f"{result.pv_pct():+.1f}%"],
         ["accuracy", f"{result.accuracy_pct():.3f}%"],
         ["availability", f"{result.availability():.4f}"],
         ["recovery times", ", ".join(f"{t:.1f}s"
                                      for t in result.recovery_times())],
         ["faults injected", result.faults_injected],
         ["human interventions", result.interventions],
         ["autonomy", "total" if result.autonomy_ratio() == 0 else
          f"{result.autonomy_ratio():.2f} interventions/fault"]]))

    print()
    print(format_series(
        f"WIPS timeline (crashes at t={result.first_crash_at:.0f}s)",
        result.wips_series(), x_label="t(s)", y_label="WIPS"))


if __name__ == "__main__":
    main()
