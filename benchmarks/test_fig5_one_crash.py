"""Figure 5 -- WIPS histogram around one crash (5 replicas, 3 profiles).

Paper claims reproduced here (Section 5.4): the crash produces a short,
bounded dip; after the load surge is redistributed, average performance
returns close to the pre-failure level while recovery is still running;
throughput never goes to zero (continuous availability).
"""

import pytest

from repro.harness.report import format_series

from benchmarks.common import emit, experiment, run_once


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("profile", ["browsing", "shopping", "ordering"])
def test_fig5_one_crash_timeline(benchmark, profile):
    result = run_once(benchmark, lambda: experiment(
        "one_crash", replicas=5, profile=profile))

    series = result.wips_series()
    crash_at = result.first_crash_at
    ready_at = result.last_ready_at
    text = format_series(
        f"Figure 5 ({profile}): one crash at t={crash_at:.0f}s, "
        f"recovered at t={ready_at:.0f}s",
        series, x_label="t(s)", y_label="WIPS")
    emit(f"fig5_one_crash_{profile}", text)

    # Continuous availability: every bucket after ramp-up delivers service.
    in_measure = [(t, w) for t, w in series
                  if result.measure_start <= t < result.measure_end]
    assert all(w > 0 for _t, w in in_measure)
    # The dip is bounded: the worst bucket during recovery stays above
    # 50% of the failure-free average (the paper's worst valley is ~17%
    # below average for ordering; ours is checked loosely).
    ff = result.failure_free_window().awips
    recovery_buckets = [w for t, w in in_measure if crash_at <= t <= ready_at]
    assert recovery_buckets, "no buckets in the recovery window"
    assert min(recovery_buckets) > 0.5 * ff
    # Performance returns to pre-crash level after recovery.
    after = [w for t, w in in_measure if t > ready_at]
    if after:
        tail_awips = sum(after) / len(after)
        assert tail_awips > 0.9 * ff
