"""Figure 6 -- One-failure recovery times vs. state size and profile.

Paper claims reproduced here (Section 5.4):

* recovery time grows with the replica state size (300/500/700 MB),
  because loading the checkpoint from disk dominates;
* for the read-mostly profiles the growth across sizes is steep, while
  for the ordering profile the queue-resynchronization work (independent
  of state size, overlapped with the checkpoint load) levels the
  *relative* growth;
* absolute recovery times are tens of seconds (40-140 s in the paper's
  timeline; ours are the same divided by the scale's time compression).
"""

import os

import pytest

from repro.harness.report import format_table

from benchmarks.common import emit, experiment, run_once, scale


def replica_counts():
    if os.environ.get("REPRO_QUICK"):
        return (5,)
    return (5, 8)


@pytest.mark.benchmark(group="fig6")
def test_fig6_recovery_times(benchmark):
    def run():
        times = {}
        for replicas in replica_counts():
            for num_ebs in (30, 50, 70):
                for profile in ("browsing", "shopping", "ordering"):
                    result = experiment("one_crash", replicas=replicas,
                                        num_ebs=num_ebs, profile=profile)
                    recovery = result.recovery_times()
                    assert recovery, "recovery did not complete in-window"
                    times[(replicas, num_ebs, profile)] = recovery[0]
        return times

    times = run_once(benchmark, run)
    time_div = scale().time_div

    rows = []
    for (replicas, num_ebs, profile), seconds in sorted(times.items()):
        rows.append([f"{replicas}R {num_ebs}EB ({num_ebs*10}MB) {profile}",
                     f"{seconds:.1f}", f"{seconds * time_div:.0f}"])
    emit("fig6_recovery_times", format_table(
        "Figure 6: recovery time vs state size "
        f"(paper-equivalent = measured x {time_div:g})",
        ["config", "recovery s (scaled)", "paper-equivalent s"], rows))

    for replicas in replica_counts():
        for profile in ("browsing", "shopping", "ordering"):
            small = times[(replicas, 30, profile)]
            large = times[(replicas, 70, profile)]
            # Recovery grows with state size for every profile...
            assert large > small, (replicas, profile)
        # ...but the *relative* growth is largest for the read-mostly
        # profiles (checkpoint-load bound) and smallest for ordering
        # (resync work is size-independent): the paper's "leveling".
        browsing_growth = (times[(replicas, 70, "browsing")]
                           / times[(replicas, 30, "browsing")])
        ordering_growth = (times[(replicas, 70, "ordering")]
                           / times[(replicas, 30, "ordering")])
        assert ordering_growth < browsing_growth
    # Paper-equivalent magnitudes: tens of seconds (the paper's Figure 6
    # spans ~40-140 s and its longest recovery overall is ~180 s) -- not
    # milliseconds, not tens of minutes.
    for seconds in times.values():
        equivalent = seconds * time_div
        assert 20.0 <= equivalent <= 300.0
