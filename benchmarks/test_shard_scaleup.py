"""Shard scale-up -- aggregate WIPS of the partitioned store.

Beyond the paper: the RobustStore of the paper orders *every* write
through one Paxos group, so its throughput ceiling is the leader's
ordering capacity no matter how many replicas are added (Figure 4 shows
the flat-to-declining curve).  ``repro.shard`` partitions the TPC-W
entity space over independent groups; this benchmark drives the
write-heaviest (ordering) profile far past one group's saturation point
and shows the aggregate delivered WIPS climbing monotonically from 1 to
4 shards at a fixed per-group replica count.

A second case replays a 25-seed sweep with a mid-run crash in each
group and asserts the SafetyChecker stays silent: per-shard consensus
invariants *and* cross-shard 2PC atomicity.
"""

import pytest

from repro.harness.config import tiny_scale
from repro.harness.experiment import Experiment
from repro.harness.report import format_table

from benchmarks.common import emit, run_once

#: Load-domain offered WIPS, chosen (empirically) ~2.5x past the point
#: where a single 3-replica group saturates under the ordering profile,
#: so added shards translate into delivered throughput.
SATURATING_WIPS = 3200.0
SHARD_COUNTS = (1, 2, 4)
SWEEP_SEEDS = 25


def _run(shards, seed=1, **overrides):
    fields = dict(replicas=3, num_ebs=60, seed=seed)
    fields.update(overrides)
    return (Experiment(tiny_scale(), **fields)
            .load("closed", wips=SATURATING_WIPS, mix="ordering")
            .shards(shards).observe().check_safety().baseline().run())


@pytest.mark.shard
@pytest.mark.benchmark(group="shard")
def test_shard_scaleup(benchmark):
    def run():
        return {shards: _run(shards) for shards in SHARD_COUNTS}

    results = run_once(benchmark, run)
    rows = []
    awips = {}
    for shards, result in results.items():
        whole = result.whole_window()
        awips[shards] = whole.awips
        counters = result.metrics.get("counters", {})
        rows.append([f"{shards} shard(s) x 3R", f"{whole.awips:.1f}",
                     f"{whole.completed}",
                     f"{counters.get('shard.txn_committed', 0):.0f}"
                     if shards > 1 else "-"])
    emit("shard_scaleup", format_table(
        f"Shard scale-up, ordering profile at {SATURATING_WIPS:.0f} "
        f"offered WIPS (load domain)",
        ["config", "aggregate WIPS", "completed", "2PC commits"], rows))

    # The acceptance curve: strictly more delivered throughput per shard
    # added, with the whole cluster staying error- and violation-free.
    for smaller, larger in zip(SHARD_COUNTS, SHARD_COUNTS[1:]):
        assert awips[larger] > awips[smaller], (
            f"{larger} shards not faster than {smaller}: {awips}")
    # Sharding past saturation buys real headroom, not noise.
    assert awips[SHARD_COUNTS[-1]] > 1.5 * awips[1]
    for result in results.values():
        assert result.safety_violations == []
        assert result.whole_window().errors == 0


@pytest.mark.shard
@pytest.mark.benchmark(group="shard")
def test_shard_safety_sweep_25_seeds(benchmark):
    def run():
        outcomes = []
        for seed in range(SWEEP_SEEDS):
            result = (Experiment(tiny_scale(), replicas=3, num_ebs=30,
                                 seed=seed)
                      .load("closed", wips=400.0, mix="ordering")
                      .shards(2).check_safety()
                      .faults("crash@240:0.*, crash@270:1.*").run())
            outcomes.append((seed, result))
        return outcomes

    outcomes = run_once(benchmark, run)
    violations = {seed: result.safety_violations
                  for seed, result in outcomes if result.safety_violations}
    assert violations == {}, violations
    recovered = sum(1 for _seed, result in outcomes
                    if len(result.recoveries) == 2)
    emit("shard_safety_sweep", format_table(
        "25-seed 2-shard crash sweep (ordering profile)",
        ["measure", "value"],
        [["seeds", f"{SWEEP_SEEDS}"],
         ["safety violations (incl. 2PC atomicity)", "0"],
         ["runs with both groups recovered", f"{recovered}"]]))
    assert recovered == SWEEP_SEEDS
