"""Table 1 -- One failure: performability (5 and 8 replicas x 3 profiles).

Paper claims reproduced here (Section 5.4):

* the performance drop during recovery (PV) is bounded -- the paper's
  worst case over every faultload is < 13%, with shopping < 5%;
* 8 replicas absorb the crash better than 5 (smaller |PV|);
* browsing and shopping have a low coefficient of variation, while
  ordering's CV is several times larger (which is why the paper declares
  its PV untrustworthy).
"""

import pytest

from repro.harness.report import format_table

from benchmarks.common import emit, experiment, run_once

#: (replicas, profile) -> (failure-free AWIPS, CV, recovery AWIPS, CV, PV%)
PAPER_TABLE1 = {
    (5, "browsing"): (977.4, 0.01, 898.28, 0.01, -8.1),
    (5, "shopping"): (928.1, 0.06, 884.46, 0.07, -4.7),
    (5, "ordering"): (841.4, 0.20, 732.33, 0.24, -12.9),
    (8, "browsing"): (985.3, 0.01, 980.4, 0.01, -0.5),
    (8, "shopping"): (916.8, 0.01, 903.88, 0.09, -1.4),
    (8, "ordering"): (790.8, 0.33, 761.74, 0.34, -3.7),
}


@pytest.mark.benchmark(group="table1")
def test_table1_one_failure_performability(benchmark):
    def run():
        results = {}
        for replicas in (5, 8):
            for profile in ("browsing", "shopping", "ordering"):
                results[(replicas, profile)] = experiment(
                    "one_crash", replicas=replicas, profile=profile)
        return results

    results = run_once(benchmark, run)

    rows = []
    measured_pv = {}
    measured_cv = {}
    for (replicas, profile), result in results.items():
        ff = result.failure_free_window()
        rec = result.recovery_window()
        pv = result.pv_pct()
        measured_pv[(replicas, profile)] = pv
        measured_cv[(replicas, profile)] = ff.cv
        paper = PAPER_TABLE1[(replicas, profile)]
        rows.append([f"{replicas}/{profile[0]}",
                     f"{ff.awips:.1f}", f"{ff.cv:.2f}",
                     f"{rec.awips:.1f}", f"{rec.cv:.2f}",
                     f"{pv:+.1f}", f"{paper[4]:+.1f}"])
    emit("table1_performability", format_table(
        "Table 1: one failure, performability",
        ["R/P", "ff AWIPS", "CV", "rec AWIPS", "CV", "PV% meas", "PV% paper"],
        rows))

    # Shape assertions.
    for key, pv in measured_pv.items():
        assert pv > -30.0, f"{key}: recovery dip far beyond the paper's band"
    # More replicas absorb the crash better for every profile.
    for profile in ("browsing", "shopping", "ordering"):
        assert measured_pv[(8, profile)] >= measured_pv[(5, profile)] - 2.0
    # No profile *gains* double digits from a crash.
    assert all(pv < 10.0 for pv in measured_pv.values())
