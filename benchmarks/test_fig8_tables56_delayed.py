"""Figure 8 + Tables 5/6 -- Two crashes, one autonomous + one delayed
(manual) recovery.

Paper claims reproduced here (Section 5.6):

* both replicas crash at t=240 s; one recovers autonomously, the other
  only after a manual reboot at t=390 s;
* while running with fewer replicas, performance sits below the
  failure-free level (paper R1 PVs: -3.6% .. -26.5%); after the second,
  delayed recovery the system returns to (or above) its pre-crash level
  (paper R2 PVs: -4.8% .. +3.8%) -- the delayed replica's long
  resynchronization happens concurrently and barely disturbs throughput;
* accuracy remains at three 9s or better (paper: 99.957-99.998%).
"""

import pytest

from repro.harness.report import format_series, format_table

from benchmarks.common import emit, experiment, run_once

PAPER_TABLE5 = {  # (R1 PV%, R2 PV%)
    (5, "browsing"): (-11.1, -4.8), (5, "shopping"): (-11.2, -1.0),
    (5, "ordering"): (-26.5, +3.8),
    (8, "browsing"): (-3.63, -3.7), (8, "shopping"): (-5.5, -1.0),
    (8, "ordering"): (-12.6, +2.1),
}
PAPER_TABLE6 = {
    (5, "browsing"): 99.990, (5, "shopping"): 99.988, (5, "ordering"): 99.957,
    (8, "browsing"): 99.998, (8, "shopping"): 99.995, (8, "ordering"): 99.974,
}


def recovery_periods(result):
    """R1: crash -> first recovery done; R2: manual reboot -> second done."""
    by_ready = sorted((r for r in result.recoveries
                       if r["ready_at"] is not None),
                      key=lambda r: r["ready_at"])
    assert len(by_ready) == 2, "both replicas must have recovered in-window"
    first, second = by_ready
    r1 = (result.first_crash_at, first["ready_at"])
    r2 = (second["rebooted_at"], second["ready_at"])
    return r1, r2


@pytest.mark.benchmark(group="fig8")
def test_fig8_delayed_recovery_timeline(benchmark):
    result = run_once(benchmark, lambda: experiment(
        "delayed", replicas=5, num_ebs=50, profile="shopping"))
    series = result.wips_series()
    (r1s, r1e), (r2s, r2e) = recovery_periods(result)
    emit("fig8_delayed_recovery", format_series(
        f"Figure 8 (shopping): both crash t={result.first_crash_at:.0f}s, "
        f"r1 done t={r1e:.0f}s, manual reboot t={r2s:.0f}s, "
        f"r2 done t={r2e:.0f}s", series, x_label="t(s)", y_label="WIPS"))
    in_measure = [w for t, w in series
                  if result.measure_start <= t < result.measure_end]
    assert all(w > 0 for w in in_measure)
    # The defining shape of the scenario: the manual reboot fires only
    # after the autonomous recovery has completely finished, and the
    # delayed replica was down much longer than the autonomous one.
    assert r2s > r1e
    autonomous_downtime = r1e - result.first_crash_at
    delayed_downtime = r2e - result.first_crash_at
    assert delayed_downtime > 1.5 * autonomous_downtime


@pytest.mark.benchmark(group="table5")
def test_table5_table6_delayed_recovery(benchmark):
    def run():
        return {(replicas, profile): experiment(
                    "delayed", replicas=replicas, profile=profile)
                for replicas in (5, 8)
                for profile in ("browsing", "shopping", "ordering")}

    results = run_once(benchmark, run)

    rows = []
    for (replicas, profile), result in results.items():
        ff = result.failure_free_window()
        (r1s, r1e), (r2s, r2e) = recovery_periods(result)
        r1 = result.window_between(r1s, min(r1e, result.measure_end))
        r2 = result.window_between(r2s, min(max(r2e, r2s + 1e-9),
                                            result.measure_end))
        pv1 = 100.0 * (r1.awips - ff.awips) / ff.awips
        pv2 = 100.0 * (r2.awips - ff.awips) / ff.awips
        accuracy = result.accuracy_pct()
        paper5 = PAPER_TABLE5[(replicas, profile)]
        rows.append([f"{replicas}/{profile[0]}", f"{ff.awips:.1f}",
                     f"{pv1:+.1f}", f"{paper5[0]:+.1f}",
                     f"{pv2:+.1f}", f"{paper5[1]:+.1f}",
                     f"{accuracy:.3f}",
                     f"{PAPER_TABLE6[(replicas, profile)]:.3f}"])
        # Shapes: R2 recovers more of the performance than R1 did, the
        # manual reboot is the only intervention, accuracy stays high.
        assert pv2 > pv1 - 2.0
        assert pv2 > -20.0
        assert accuracy >= (99.7 if profile == "ordering" else 99.85)
        assert result.interventions == 1
        assert result.faults_injected == 2
    emit("table5_table6_delayed", format_table(
        "Tables 5/6: two crashes, one delayed recovery",
        ["R/P", "ff AWIPS", "R1 PV% meas", "paper", "R2 PV% meas", "paper",
         "acc% meas", "acc% paper"], rows))
