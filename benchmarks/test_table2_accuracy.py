"""Table 2 -- One failure: accuracy (plus availability and autonomy).

Paper claims reproduced here (Sections 5.4/5.7): accuracy stays at "three
9s or better" under a single crash-recovery (paper: 99.985-99.999%),
availability is uninterrupted, and no human intervention is needed
(total autonomy).
"""

import pytest

from repro.harness.report import format_table

from benchmarks.common import emit, experiment, run_once

PAPER_TABLE2 = {
    (5, "browsing"): 99.999, (5, "shopping"): 99.999, (5, "ordering"): 99.985,
    (8, "browsing"): 99.999, (8, "shopping"): 99.999, (8, "ordering"): 99.986,
}


@pytest.mark.benchmark(group="table2")
def test_table2_one_failure_accuracy(benchmark):
    def run():
        return {(replicas, profile): experiment(
                    "one_crash", replicas=replicas, profile=profile)
                for replicas in (5, 8)
                for profile in ("browsing", "shopping", "ordering")}

    results = run_once(benchmark, run)

    rows = []
    for (replicas, profile), result in results.items():
        accuracy = result.accuracy_pct()
        rows.append([f"{replicas}/{profile}",
                     f"{accuracy:.3f}", f"{PAPER_TABLE2[(replicas, profile)]:.3f}",
                     f"{result.availability():.4f}",
                     f"{result.autonomy_ratio():.1f}"])
        # Three 9s or better, as the paper concludes for its worst case.
        assert accuracy >= 99.9, f"{replicas}/{profile}: accuracy {accuracy}"
        assert result.availability() == 1.0
        assert result.autonomy_ratio() == 0.0  # watchdog did everything
    emit("table2_accuracy", format_table(
        "Table 2: one failure, accuracy / availability / autonomy",
        ["R/P", "accuracy% meas", "accuracy% paper", "availability",
         "interventions/fault"], rows))
