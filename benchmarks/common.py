"""Shared infrastructure for the benchmark suite.

Every benchmark reproduces one table or figure of the paper.  Experiments
are cached per-session (several tables read the same faultload runs), all
output is written both to ``bench_reports/`` and to the real stdout (so it
survives pytest's capture into ``bench_output.txt``), and the scale is the
compressed ``bench_scale`` unless ``REPRO_FULL_SCALE=1``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Callable, Dict, Tuple

from repro.harness.config import ClusterConfig, active_scale
from repro.harness.experiment import Experiment
from repro.harness.experiments import ExperimentResult

REPORT_DIR = Path(__file__).resolve().parent.parent / "bench_reports"

_SCENARIOS: Dict[str, Callable[[Experiment], Experiment]] = {
    "baseline": Experiment.baseline,
    "one_crash": Experiment.one_crash,
    "two_crashes": Experiment.two_crashes,
    "delayed": Experiment.delayed_recovery,
}

_CACHE: Dict[Tuple, ExperimentResult] = {}

#: Replica counts for the Figure 3/4 sweeps (the paper sweeps 4..12; the
#: bench uses the endpoints and midpoint unless REPRO_FULL_SWEEP=1).
def sweep_replicas():
    if os.environ.get("REPRO_FULL_SWEEP"):
        return (4, 5, 6, 7, 8, 9, 10, 11, 12)
    return (4, 8, 12)


def scale():
    return active_scale()


def experiment(kind: str, **config_overrides) -> ExperimentResult:
    """Run (or fetch from cache) one experiment.

    The cache key is built from the *resolved* configuration, so spelling
    a default explicitly (e.g. ``num_ebs=30``) still hits the cache.
    """
    config = ClusterConfig(scale=scale(), **config_overrides)
    key = (kind, scale().name, config.replicas, config.num_ebs,
           config.profile, config.offered_wips, config.think_time_s,
           config.enable_fast, config.seed, config.use_navigation,
           config.paxos_overrides, config.treplica_overrides)
    if key not in _CACHE:
        builder = _SCENARIOS[kind](Experiment.from_config(config))
        _CACHE[key] = builder.run()
    return _CACHE[key]


def emit(name: str, text: str) -> None:
    """Write a report to bench_reports/<name>.txt and the real stdout."""
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
    sys.__stdout__.write(f"\n{text}\n")
    sys.__stdout__.flush()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
