"""Micro-benchmarks of the consensus core (library performance, not a
paper figure): decided commands per simulated second and per wall second,
for classic and fast modes."""

import pytest

from repro.paxos import Command, PaxosConfig, PaxosEngine
from repro.sim import Network, NetworkParams, Node, SeedTree, Simulator


def drive_engine(enable_fast: bool, n: int = 5, commands: int = 400):
    sim = Simulator()
    seed = SeedTree(1)
    network = Network(sim, NetworkParams(), seed=seed)
    nodes = [Node(sim, network, f"r{i}") for i in range(n)]
    names = [node.name for node in nodes]
    config = PaxosConfig(enable_fast=enable_fast)
    engines = [PaxosEngine(node, names, i, config, seed)
               for i, node in enumerate(nodes)]
    delivered = []

    def consumer(engine):
        while True:
            _instance, fresh = yield engine.delivery.get()
            delivered.extend(fresh)

    for node, engine in zip(nodes, engines):
        engine.start()
        node.spawn(consumer(engine))
    sim.run(until=1.0)

    def feeder():
        for k in range(commands):
            engines[k % n].submit(Command(f"c{k}", None))
            yield sim.timeout(0.002)

    sim.spawn(feeder())
    sim.run(until=10.0)
    unique = {c.uid for c in delivered}
    assert len(unique) == commands * 1  # every command decided...
    return sim.now


@pytest.mark.benchmark(group="micro")
def test_micro_classic_paxos_throughput(benchmark):
    benchmark.pedantic(lambda: drive_engine(False), rounds=1, iterations=1)


@pytest.mark.benchmark(group="micro")
def test_micro_fast_paxos_throughput(benchmark):
    benchmark.pedantic(lambda: drive_engine(True), rounds=1, iterations=1)
