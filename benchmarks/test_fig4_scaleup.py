"""Figure 4 + Section 5.3 -- Scaleup at a fixed 1000 WIPS offered load.

Paper claims reproduced here:

* browsing scales ideally (a flat WIPS line);
* shopping and ordering decline only gently as replicas are added
  (paper: ~-0.85%/replica shopping, ~-2.1%/replica ordering);
* delivered WIPS and WIRT are strongly linearly correlated for the
  write-heavy profiles (paper: r^2 = 0.8788 browsing, 0.9976 shopping,
  0.9958 ordering).
"""

import pytest

from repro.harness.report import format_table, linear_regression

from benchmarks.common import emit, experiment, run_once, sweep_replicas

PAPER_R2 = {"browsing": 0.8788, "shopping": 0.9976, "ordering": 0.9958}
PAPER_SLOPE_PCT = {"browsing": 0.0, "shopping": -0.85, "ordering": -2.1}


@pytest.mark.benchmark(group="fig4")
def test_fig4_scaleup(benchmark):
    def run():
        points = {}
        for profile in ("browsing", "shopping", "ordering"):
            for replicas in sweep_replicas():
                result = experiment("baseline", replicas=replicas,
                                    profile=profile, offered_wips=1000.0)
                stats = result.whole_window()
                points[(profile, replicas)] = (stats.awips,
                                               stats.mean_wirt_s * 1000.0)
        return points

    points = run_once(benchmark, run)
    replicas_list = sweep_replicas()

    rows = []
    slopes = {}
    correlations = {}
    for profile in ("browsing", "shopping", "ordering"):
        series = [(replicas, points[(profile, replicas)][0])
                  for replicas in replicas_list]
        slope, intercept, _r2 = linear_regression(series)
        base = series[0][1]
        slopes[profile] = 100.0 * slope / base  # % per replica added
        wips_wirt = [(points[(profile, r)][0], points[(profile, r)][1])
                     for r in replicas_list]
        _s, _i, r2 = linear_regression(wips_wirt)
        correlations[profile] = r2
        for replicas in replicas_list:
            wips, wirt = points[(profile, replicas)]
            rows.append([f"{profile} {replicas}R", f"{wips:.0f}",
                         f"{wirt:.0f}"])
        rows.append([f"{profile} slope %/replica",
                     f"{slopes[profile]:+.2f} (paper {PAPER_SLOPE_PCT[profile]:+.2f})",
                     f"r2={r2:.3f} (paper {PAPER_R2[profile]:.3f})"])
    emit("fig4_scaleup", format_table(
        "Figure 4: scaleup at 1000 offered WIPS",
        ["config", "WIPS", "WIRT ms / fit"], rows))

    # Shape assertions.
    assert abs(slopes["browsing"]) < 1.0       # near-ideal scaleup
    assert slopes["ordering"] <= slopes["browsing"] + 0.5
    for replicas in replicas_list:
        assert points[("ordering", replicas)][1] > points[("browsing", replicas)][1]
    # WIPS stays within a few percent of offered for every profile.
    offered = 1000.0 / experiment("baseline", replicas=4, profile="browsing",
                                  offered_wips=1000.0).config.scale.load_div
    for profile in ("browsing", "shopping"):
        for replicas in replicas_list:
            assert points[(profile, replicas)][0] > 0.93 * offered
