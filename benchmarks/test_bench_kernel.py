"""Kernel throughput benchmark: the BENCH_7_kernel.json producer.

Runs :func:`repro.harness.bench.run_kernel_bench` -- a tiny-scale
fault-free run under the closed-loop RBE fleet and under the open-loop
million-user source -- and writes the JSON report CI diffs against the
committed baseline.  A second micro-benchmark isolates the
``StreamingHistogram`` last-bucket memo, comparing the memoized
``observe`` against a memo-free reference on the WIRT-like workload the
memo was built for.

Wall-clock assertions here are deliberately loose (shared runners); the
tight 20%-regression gate lives in ``repro bench --compare``, where the
baseline comes from the same machine.
"""

import json
import math
import time

import pytest

from repro.harness.bench import compare, run_kernel_bench
from repro.obs.registry import StreamingHistogram

from benchmarks.common import REPORT_DIR, emit, run_once


@pytest.mark.benchmark(group="kernel")
def test_kernel_bench_closed_and_open(benchmark):
    report = run_once(benchmark,
                      lambda: run_kernel_bench(scale="tiny", seed=2009))

    REPORT_DIR.mkdir(exist_ok=True)
    out = REPORT_DIR / "BENCH_7_kernel.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    closed = report["modes"]["closed"]
    open_ = report["modes"]["open"]
    emit("bench_kernel", "\n".join([
        "Kernel bench (tiny scale, fault-free):",
        f"  closed : {closed['events']:,} events, "
        f"{closed['events_per_wall_s']:,.0f} ev/s, "
        f"AWIPS {closed['awips']:.1f}",
        f"  open   : {open_['events']:,} events over "
        f"{open_['population']:,} users, "
        f"{open_['events_per_wall_s']:,.0f} ev/s, "
        f"AWIPS {open_['awips']:.1f}",
    ]))

    # Both modes drove the cluster error-free at comparable throughput.
    for entry in (closed, open_):
        assert entry["errors"] == 0
        assert entry["events"] > 100_000
        assert entry["peak_wips"] > entry["awips"] > 100.0
    assert open_["population"] == 1_000_000
    # The million-user open-loop run keeps kernel events/sec within 2x
    # of the closed-loop fleet (the ISSUE's acceptance bound).
    assert open_["events_per_wall_s"] > 0.5 * closed["events_per_wall_s"]
    # A report is always within tolerance of itself.
    assert compare(report, report) == []


def test_compare_flags_regressions():
    report = run_kernel_bench(scale="tiny", seed=2009, modes=("closed",))
    slower = json.loads(json.dumps(report))
    slower["modes"]["closed"]["events_per_wall_s"] /= 2.0
    assert compare(slower, report) != []
    assert compare(report, slower) == []   # being faster is fine


class _MemoFreeHistogram(StreamingHistogram):
    """The pre-memo observe(), for an apples-to-apples timing baseline."""

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.lo:
            index = 0
        else:
            index = 1 + int(math.log(value / self.lo) * self._inv_log_g)
            if index >= self._nbuckets:
                index = self._nbuckets - 1
        self._counts[index] += 1


@pytest.mark.benchmark(group="kernel")
def test_histogram_memo_micro_benchmark(benchmark):
    # WIRT-like workload: long runs of near-identical latencies with
    # occasional jumps -- the memo's target case.
    values = []
    for block in range(200):
        center = 0.05 * (1 + block % 7)
        values.extend(center * (1 + 0.001 * k) for k in range(100))

    def timed(cls):
        histogram = cls("t", lo=1e-4, hi=100.0)
        started = time.perf_counter()
        observe = histogram.observe
        for value in values:
            observe(value)
        return time.perf_counter() - started, histogram

    def run():
        return timed(_MemoFreeHistogram), timed(StreamingHistogram)

    (before_s, reference), (after_s, memoized) = run_once(benchmark, run)
    emit("bench_histogram_memo", "\n".join([
        f"StreamingHistogram.observe, {len(values):,} samples:",
        f"  before (no memo): {before_s * 1e6:,.0f} us",
        f"  after  (memo)   : {after_s * 1e6:,.0f} us "
        f"({before_s / after_s:.2f}x)",
    ]))
    # Identical sketches, and the memo must not be slower than ~par
    # (2x headroom for scheduler noise on shared runners).
    assert list(memoized._counts) == list(reference._counts)
    assert memoized.count == reference.count
    assert after_s < 2.0 * before_s
