"""Ablation benches for the design choices DESIGN.md calls out.

These do not reproduce a specific paper table; they quantify the design
decisions the paper (and Treplica) relies on:

* the fast/classic mode rule (Section 2): fast rounds save a message
  delay at low write contention, classic ballots are the fallback;
* batching (group commit) on the ordering path;
* parallel checkpoint-load / queue-resync during recovery (Section 5.4);
* the paper's think-time reduction (Section 5.1): 1 s vs the spec's 7 s
  think time "does not change the read/write ratio or the probabilistic
  characteristics" of the workload.
"""

import pytest

from repro.harness.report import format_table

from benchmarks.common import emit, experiment, run_once


@pytest.mark.benchmark(group="ablation")
def test_ablation_fast_vs_classic_paxos(benchmark):
    def run():
        fast = experiment("baseline", replicas=5, profile="shopping",
                          offered_wips=1200.0, enable_fast=True)
        classic = experiment("baseline", replicas=5, profile="shopping",
                             offered_wips=1200.0, enable_fast=False)
        return fast.whole_window(), classic.whole_window()

    fast, classic = run_once(benchmark, run)
    emit("ablation_paxos_modes", format_table(
        "Ablation: Fast Paxos vs classic Paxos (5R shopping, moderate load)",
        ["mode", "AWIPS", "mean WIRT ms", "p90 WIRT ms"],
        [["fast", f"{fast.awips:.1f}", f"{fast.mean_wirt_s*1000:.1f}",
          f"{fast.p90_wirt_s*1000:.1f}"],
         ["classic", f"{classic.awips:.1f}", f"{classic.mean_wirt_s*1000:.1f}",
          f"{classic.p90_wirt_s*1000:.1f}"]]))
    # Both modes sustain the offered load; neither collapses.
    assert fast.awips > 0.85 * classic.awips
    assert classic.awips > 0.85 * fast.awips


@pytest.mark.benchmark(group="ablation")
def test_ablation_batching(benchmark):
    def run():
        batched = experiment("baseline", replicas=5, profile="ordering",
                             offered_wips=1200.0)
        unbatched = experiment("baseline", replicas=5, profile="ordering",
                               offered_wips=1200.0,
                               paxos_overrides=(("max_batch", 1),
                                                ("batch_window_s", 0.0005)))
        return batched.whole_window(), unbatched.whole_window()

    batched, unbatched = run_once(benchmark, run)
    emit("ablation_batching", format_table(
        "Ablation: group commit batching (5R ordering)",
        ["config", "AWIPS", "mean WIRT ms"],
        [["batched (default)", f"{batched.awips:.1f}",
          f"{batched.mean_wirt_s*1000:.1f}"],
         ["batch=1", f"{unbatched.awips:.1f}",
          f"{unbatched.mean_wirt_s*1000:.1f}"]]))
    # Without batching the fsync-per-command ordering path backs up:
    # response times degrade markedly.
    assert unbatched.mean_wirt_s > 1.2 * batched.mean_wirt_s


@pytest.mark.benchmark(group="ablation")
def test_ablation_parallel_vs_sequential_recovery(benchmark):
    def run():
        parallel = experiment("one_crash", replicas=5, profile="ordering",
                              num_ebs=50)
        sequential = experiment("one_crash", replicas=5, profile="ordering",
                                num_ebs=50,
                                treplica_overrides=(("sequential_recovery",
                                                     True),))
        return parallel, sequential

    parallel, sequential = run_once(benchmark, run)
    p_time = parallel.recovery_times()[0]
    s_time = sequential.recovery_times()[0]
    emit("ablation_recovery", format_table(
        "Ablation: parallel vs sequential recovery (5R ordering, 500MB)",
        ["scheme", "recovery s"],
        [["parallel (paper)", f"{p_time:.1f}"],
         ["sequential", f"{s_time:.1f}"]]))
    # The overlap saves (at most) the queue-resync *fetch* phase.  On our
    # substrate the fetch is network-bound and small, so parallel may only
    # tie sequential -- the honest finding recorded in EXPERIMENTS.md; the
    # ordering profile's recovery-time leveling (Figure 6) comes from the
    # size-independent backlog-apply share instead.
    assert p_time <= s_time + 0.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_cbmg_navigation_vs_mix_sampling(benchmark):
    """The RBEs can walk the full CBMG page graph instead of sampling the
    steady-state mix directly; the fitted graph's stationary distribution
    equals the spec mix, so throughput and update ratio must agree --
    validating the mix-sampling substitution documented in DESIGN.md."""
    def run():
        mix = experiment("baseline", replicas=5, profile="shopping",
                         offered_wips=1200.0)
        cbmg = experiment("baseline", replicas=5, profile="shopping",
                          offered_wips=1200.0, use_navigation=True)
        return mix, cbmg

    mix, cbmg = run_once(benchmark, run)
    a, b = mix.whole_window(), cbmg.whole_window()

    def update_fraction(result):
        from repro.tpcw.workload import UPDATE_INTERACTIONS
        samples = [s for s in result.collector.samples if s[3]]
        updates = sum(1 for s in samples if s[2] in UPDATE_INTERACTIONS)
        return updates / len(samples)

    emit("ablation_navigation", format_table(
        "Ablation: CBMG navigation vs steady-state mix sampling",
        ["RBE model", "AWIPS", "mean WIRT ms", "update fraction"],
        [["mix sampling", f"{a.awips:.1f}", f"{a.mean_wirt_s*1000:.1f}",
          f"{update_fraction(mix):.3f}"],
         ["CBMG walk", f"{b.awips:.1f}", f"{b.mean_wirt_s*1000:.1f}",
          f"{update_fraction(cbmg):.3f}"]]))
    assert b.awips == pytest.approx(a.awips, rel=0.08)
    assert update_fraction(cbmg) == pytest.approx(update_fraction(mix),
                                                  abs=0.03)


@pytest.mark.benchmark(group="ablation")
def test_ablation_think_time_invariance(benchmark):
    def run():
        fast_think = experiment("baseline", replicas=5, profile="shopping",
                                offered_wips=800.0, think_time_s=1.0)
        slow_think = experiment("baseline", replicas=5, profile="shopping",
                                offered_wips=800.0, think_time_s=7.0)
        return fast_think, slow_think

    fast_think, slow_think = run_once(benchmark, run)
    a = fast_think.whole_window()
    b = slow_think.whole_window()

    def update_fraction(result):
        from repro.tpcw.workload import UPDATE_INTERACTIONS
        samples = [s for s in result.collector.samples if s[3]]
        updates = sum(1 for s in samples if s[2] in UPDATE_INTERACTIONS)
        return updates / len(samples)

    emit("ablation_think_time", format_table(
        "Ablation: think time 1 s vs 7 s at equal offered WIPS (Section 5.1)",
        ["think", "#RBEs", "AWIPS", "update fraction"],
        [["1 s", fast_think.config.num_rbes, f"{a.awips:.1f}",
          f"{update_fraction(fast_think):.3f}"],
         ["7 s", slow_think.config.num_rbes, f"{b.awips:.1f}",
          f"{update_fraction(slow_think):.3f}"]]))
    # Same offered load, 7x the RBEs: throughput and mix are unchanged.
    assert b.awips == pytest.approx(a.awips, rel=0.1)
    assert update_fraction(slow_think) == pytest.approx(
        update_fraction(fast_think), abs=0.03)
