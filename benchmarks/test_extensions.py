"""Extension experiments beyond the paper's faultloads.

The paper's title promises "crash, failover, and recovery"; its
evaluation covers one crash, two concurrent crashes, and a delayed
recovery.  These benches add two scenarios the same harness supports:

* **sequential crashes** -- the second crash fires only after the first
  recovery completed (the system re-absorbs each fault independently);
* **a network partition** -- a replica stays up but cannot reach its
  peers: strictly harsher than a crash, because the proxy's HTTP probes
  still pass while the replica can no longer commit updates.
"""

import pytest

from repro.harness.experiment import Experiment
from repro.harness.config import ClusterConfig
from repro.harness.report import format_table

from benchmarks.common import emit, run_once, scale


@pytest.mark.benchmark(group="extension")
def test_extension_sequential_crashes(benchmark):
    config = ClusterConfig(replicas=5, profile="shopping", scale=scale())
    result = run_once(benchmark, lambda: Experiment.from_config(config)
                      .sequential_crashes().run())
    assert result.faults_injected == 2
    assert len(result.recoveries) == 2
    recovery_times = result.recovery_times()
    emit("extension_sequential", format_table(
        "Extension: two sequential crashes (5R shopping)",
        ["measure", "value"],
        [["PV during (joint) recovery window", f"{result.pv_pct():+.1f}%"],
         ["accuracy", f"{result.accuracy_pct():.3f}%"],
         ["recovery times", ", ".join(f"{t:.1f}s" for t in recovery_times)],
         ["interventions", result.interventions]]))
    # Non-overlapping crashes: each is absorbed like a single failure.
    assert result.accuracy_pct() > 99.8
    assert result.availability() == 1.0
    assert result.autonomy_ratio() == 0.0
    # Both recoveries took roughly the same time (same state size).
    assert max(recovery_times) < 2.0 * min(recovery_times)


@pytest.mark.benchmark(group="extension")
def test_extension_partition_is_harsher_than_crash(benchmark):
    config = ClusterConfig(replicas=5, profile="shopping", scale=scale())
    result = run_once(benchmark, lambda: Experiment.from_config(config)
                      .partition(replica=2, duration_s=120.0).run())
    emit("extension_partition", format_table(
        "Extension: 120 s network partition of one replica (5R shopping)",
        ["measure", "value"],
        [["accuracy", f"{result.accuracy_pct():.3f}%"],
         ["availability", f"{result.availability():.4f}"],
         ["errors by kind",
          str(result.collector.error_counts(result.measure_start,
                                            result.measure_end))]]))
    # The cluster as a whole keeps serving (the other four replicas).
    assert result.availability() == 1.0
    # But clients hashed to the isolated replica see blocked updates time
    # out -- the probe-based failover cannot detect this failure mode, so
    # accuracy is *worse* than under any of the paper's crash faultloads.
    assert result.accuracy_pct() < 99.97
