"""Figure 3 -- Speedup: saturated WIPS and WIRT vs. number of replicas.

Paper claims reproduced here (Section 5.2):

* browsing and shopping speed up almost identically, reaching ~2x at 12
  replicas (paper: S8~1.59, S12~1.97 for browsing; +11.3%/replica for
  shopping);
* the ordering profile "has by far crossed the threshold": its speedup
  collapses (paper: S8~1.29, ~+5.35%/replica);
* response time grows with the write ratio.
"""

import pytest

from repro.harness.report import compare, format_table

from benchmarks.common import emit, experiment, run_once, sweep_replicas

#: Paper values read from Figure 3 / Section 5.2.
PAPER_SPEEDUP = {
    ("browsing", 8): 1.59, ("browsing", 12): 1.97,
    ("shopping", 8): 1.52, ("shopping", 12): 1.97,
    ("ordering", 8): 1.29, ("ordering", 12): 1.43,
}


def saturating_offered(replicas: int) -> float:
    return 520.0 * replicas


@pytest.mark.benchmark(group="fig3")
def test_fig3_speedup(benchmark):
    def run():
        points = {}
        for profile in ("browsing", "shopping", "ordering"):
            for replicas in sweep_replicas():
                result = experiment(
                    "baseline", replicas=replicas, profile=profile,
                    offered_wips=saturating_offered(replicas))
                stats = result.whole_window()
                points[(profile, replicas)] = (stats.awips,
                                               stats.mean_wirt_s * 1000.0)
        return points

    points = run_once(benchmark, run)
    replicas_list = sweep_replicas()
    base = {profile: points[(profile, replicas_list[0])][0]
            for profile in ("browsing", "shopping", "ordering")}

    rows = []
    speedups = {}
    for profile in ("browsing", "shopping", "ordering"):
        for replicas in replicas_list:
            wips, wirt = points[(profile, replicas)]
            speedup = wips / base[profile]
            speedups[(profile, replicas)] = speedup
            paper = PAPER_SPEEDUP.get((profile, replicas))
            rows.append([f"{profile} {replicas}R", f"{wips:.0f}",
                         f"{wirt:.0f}", f"{speedup:.2f}",
                         "-" if paper is None else f"{paper:.2f}"])
    emit("fig3_speedup", format_table(
        "Figure 3: speedup (saturated load)",
        ["config", "WIPS", "WIRT ms", "S_k (measured)", "S_k (paper)"],
        rows))

    last = replicas_list[-1]
    # Shape assertions: who wins, by roughly what factor.
    assert speedups[("browsing", last)] > 1.5
    assert speedups[("shopping", last)] > 1.4
    assert speedups[("ordering", last)] < speedups[("shopping", last)]
    assert speedups[("ordering", last)] < 1.4  # crossed the threshold
    for replicas in replicas_list[1:]:
        assert points[("ordering", replicas)][1] > points[("shopping", replicas)][1]
        assert points[("shopping", replicas)][1] > points[("browsing", replicas)][1]
