"""Figure 7 + Tables 3/4 -- Two overlapped crashes, autonomous recoveries.

Paper claims reproduced here (Section 5.5):

* two concurrent crashes (t=240 s and t=270 s) are absorbed with a small
  performance loss (paper: largest PV -4.7% at 5 replicas, -2.9% at 8);
* both replicas rejoin autonomously in about a minute (500 MB states);
* accuracy stays at three 9s or better (paper: 99.978-99.999%);
* throughput never reaches zero (continuous availability).
"""

import pytest

from repro.harness.report import format_series, format_table

from benchmarks.common import emit, experiment, run_once

PAPER_TABLE3_PV = {
    (5, "browsing"): -3.0, (5, "shopping"): -3.7, (5, "ordering"): -4.7,
    (8, "browsing"): -2.0, (8, "shopping"): -1.8, (8, "ordering"): -2.9,
}
PAPER_TABLE4_ACC = {
    (5, "browsing"): 99.998, (5, "shopping"): 99.993, (5, "ordering"): 99.978,
    (8, "browsing"): 99.999, (8, "shopping"): 99.998, (8, "ordering"): 99.978,
}


@pytest.mark.benchmark(group="fig7")
def test_fig7_two_crash_timelines(benchmark):
    def run():
        return {profile: experiment("two_crashes", replicas=5,
                                    num_ebs=50, profile=profile)
                for profile in ("browsing", "shopping", "ordering")}

    results = run_once(benchmark, run)
    for profile, result in results.items():
        series = result.wips_series()
        emit(f"fig7_two_crashes_{profile}", format_series(
            f"Figure 7 ({profile}): crashes at t="
            f"{result.first_crash_at:.0f}s, all recovered at t="
            f"{result.last_ready_at:.0f}s", series,
            x_label="t(s)", y_label="WIPS"))
        in_measure = [w for t, w in series
                      if result.measure_start <= t < result.measure_end]
        assert all(w > 0 for w in in_measure)  # never unavailable
        assert len(result.recoveries) == 2
        assert all(r["ready_at"] is not None for r in result.recoveries)


@pytest.mark.benchmark(group="table3")
def test_table3_table4_two_crashes(benchmark):
    def run():
        return {(replicas, profile): experiment(
                    "two_crashes", replicas=replicas, profile=profile)
                for replicas in (5, 8)
                for profile in ("browsing", "shopping", "ordering")}

    results = run_once(benchmark, run)

    rows = []
    for (replicas, profile), result in results.items():
        ff = result.failure_free_window()
        rec = result.recovery_window()
        pv = result.pv_pct()
        accuracy = result.accuracy_pct()
        rows.append([f"{replicas}/{profile[0]}",
                     f"{ff.awips:.1f}", f"{ff.cv:.2f}",
                     f"{rec.awips:.1f}", f"{pv:+.1f}",
                     f"{PAPER_TABLE3_PV[(replicas, profile)]:+.1f}",
                     f"{accuracy:.3f}",
                     f"{PAPER_TABLE4_ACC[(replicas, profile)]:.3f}"])
        # Shape: bounded dip, high accuracy, total autonomy.  Ordering
        # runs deeper in saturation here than the paper's testbed (its
        # WIRT is ~1 s), so more requests are in flight per crash; its
        # accuracy bound is accordingly looser (see EXPERIMENTS.md).
        assert pv > -30.0
        assert accuracy >= (99.7 if profile == "ordering" else 99.85)
        assert result.autonomy_ratio() == 0.0
        assert result.availability() == 1.0
    emit("table3_table4_two_crashes", format_table(
        "Tables 3/4: two overlapped crashes",
        ["R/P", "ff AWIPS", "CV", "rec AWIPS", "PV% meas", "PV% paper",
         "acc% meas", "acc% paper"], rows))
    # 8 replicas absorb the double crash better than 5 on average.
    mean5 = sum(results[(5, p)].pv_pct()
                for p in ("browsing", "shopping", "ordering")) / 3
    mean8 = sum(results[(8, p)].pv_pct()
                for p in ("browsing", "shopping", "ordering")) / 3
    assert mean8 > mean5
